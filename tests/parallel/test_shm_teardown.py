"""Shared-memory teardown guarantees: no leaked segments, ever.

The three cleanup paths the arena docstring promises — explicit close
(including the eager close after a worker crash), garbage collection
of an abandoned arena, and interpreter exit — each get a test here
(exit-path coverage is implied by the finalizer test: ``weakref.finalize``
registers an atexit callback for anything still alive).
"""

import gc
import os
import signal
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.exceptions import WorkerCrashError
from repro.parallel.backends import ProcessBackend
from repro.parallel.shm import SharedArena

pytestmark = [pytest.mark.parallel, pytest.mark.robustness]


def _assert_unlinked(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def _kill_self(_item):
    os.kill(os.getpid(), signal.SIGKILL)


class TestArenaFinalizer:
    def test_close_unlinks_everything(self, rng):
        arena = SharedArena()
        refs = arena.share({"a": rng.standard_normal(16)})
        _, scratch_ref = arena.ndarray("in", (8,), np.float64)
        names = [ref.name for ref in refs.values()] + [scratch_ref.name]
        arena.close()
        _assert_unlinked(names)

    def test_close_is_idempotent(self, rng):
        arena = SharedArena()
        arena.share({"a": rng.standard_normal(4)})
        arena.close()
        arena.close()

    def test_abandoned_arena_is_collected(self, rng):
        # An arena dropped without close() (e.g. a backend abandoned
        # after a crashed fit) must not leak its segments until
        # interpreter exit: the finalizer fires at GC time.
        arena = SharedArena()
        refs = arena.share({"block": rng.standard_normal(32)})
        names = [ref.name for ref in refs.values()]
        del arena
        gc.collect()
        _assert_unlinked(names)

    def test_finalizer_holds_no_strong_reference(self, rng):
        import weakref

        arena = SharedArena()
        arena.share({"a": rng.standard_normal(4)})
        probe = weakref.ref(arena)
        del arena
        gc.collect()
        assert probe() is None


class TestWorkerCrashTeardown:
    @pytest.mark.slow
    def test_killed_worker_surfaces_crash_and_unlinks(self, rng):
        # SIGKILL a pool worker mid-map: the map must surface
        # WorkerCrashError (not BrokenProcessPool) and the arena's
        # segments must be unlinked *eagerly*, not at interpreter exit.
        backend = ProcessBackend(n_workers=1)
        try:
            refs = backend.arena.share({"payload": rng.standard_normal(64)})
            names = [ref.name for ref in refs.values()]
            with pytest.raises(WorkerCrashError, match="died mid-map"):
                backend.map(_kill_self, [0])
            _assert_unlinked(names)
        finally:
            backend.close()

    @pytest.mark.slow
    def test_backend_usable_error_after_crash(self, rng):
        # After the eager teardown the backend is closed; further use
        # must fail loudly instead of writing into unlinked segments.
        backend = ProcessBackend(n_workers=1)
        try:
            with pytest.raises(WorkerCrashError):
                backend.map(_kill_self, [0])
            with pytest.raises(ValueError, match="closed"):
                backend.arena.ndarray("in", (4,), np.float64)
        finally:
            backend.close()
