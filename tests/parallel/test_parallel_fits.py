"""End-to-end determinism: parallel fits and parallel experiment grids."""

import numpy as np
import pytest

from repro.core.srda import SRDA, srda_alpha_path
from repro.datasets import Dataset
from repro.eval.experiment import run_experiment
from repro.linalg.sparse import CSRMatrix
from repro.parallel import SerialBackend

pytestmark = pytest.mark.parallel

ALGOS = {"SRDA": lambda: SRDA(alpha=1.0)}


@pytest.fixture
def blobs(rng):
    X = np.vstack(
        [rng.standard_normal((60, 12)) + 4.0 * k for k in range(3)]
    )
    y = np.repeat(np.arange(3), 60)
    return X, y


@pytest.fixture
def sparse_blobs(blobs, rng):
    X, y = blobs
    X = np.where(rng.random(X.shape) < 0.4, X, 0.0)
    return CSRMatrix.from_dense(X), y


class TestSRDAParallelFit:
    def test_backends_agree_bitwise(self, sparse_blobs):
        X, y = sparse_blobs
        serial = SRDA(alpha=0.5, backend="serial").fit(X, y)
        threaded = SRDA(alpha=0.5, n_jobs=2).fit(X, y)
        np.testing.assert_array_equal(serial.components_, threaded.components_)

    def test_sharded_close_to_direct(self, sparse_blobs):
        X, y = sparse_blobs
        direct = SRDA(alpha=0.5).fit(X, y)
        sharded = SRDA(alpha=0.5, n_jobs=2).fit(X, y)
        np.testing.assert_allclose(
            sharded.components_, direct.components_, rtol=1e-8, atol=1e-10
        )

    def test_dense_centered_backends_agree(self, blobs):
        X, y = blobs
        serial = SRDA(
            alpha=0.5, solver="lsqr", backend="serial", centering=True
        ).fit(X, y)
        threaded = SRDA(
            alpha=0.5, solver="lsqr", n_jobs=2, centering=True
        ).fit(X, y)
        np.testing.assert_array_equal(serial.components_, threaded.components_)

    def test_predictions_unchanged(self, sparse_blobs):
        X, y = sparse_blobs
        direct = SRDA(alpha=0.5).fit(X, y)
        threaded = SRDA(alpha=0.5, n_jobs=2).fit(X, y)
        np.testing.assert_array_equal(direct.predict(X), threaded.predict(X))

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SRDA(alpha=1.0, backend=3.14)

    def test_invalid_n_jobs_rejected(self):
        with pytest.raises(ValueError, match="n_jobs"):
            SRDA(alpha=1.0, n_jobs=0)

    def test_params_stored_verbatim(self):
        model = SRDA(alpha=1.0, n_jobs=-1, backend="thread")
        assert model.n_jobs == -1
        assert model.backend == "thread"


class TestAlphaPathParallel:
    def test_backends_agree_bitwise(self, sparse_blobs):
        X, y = sparse_blobs
        alphas = [0.01, 0.1, 1.0]
        serial = srda_alpha_path(X, y, alphas, backend="serial")
        threaded = srda_alpha_path(X, y, alphas, n_jobs=2)
        for a, b in zip(serial, threaded):
            np.testing.assert_array_equal(a.components_, b.components_)

    def test_close_to_direct_path(self, sparse_blobs):
        X, y = sparse_blobs
        alphas = [0.1, 1.0]
        direct = srda_alpha_path(X, y, alphas)
        sharded = srda_alpha_path(X, y, alphas, n_jobs=2)
        for a, b in zip(direct, sharded):
            np.testing.assert_allclose(
                b.components_, a.components_, rtol=1e-8, atol=1e-10
            )


class TestExperimentParallel:
    @pytest.fixture
    def tiny_dataset(self, blobs):
        X, y = blobs
        return Dataset(
            "tiny",
            X,
            y,
            metadata={
                "split_protocol": "per_class_within",
                "train_sizes": [5, 10],
            },
        )

    def test_grid_bitwise_identical_across_n_jobs(self, tiny_dataset):
        results = [
            run_experiment(
                tiny_dataset, ALGOS, n_splits=2, seed=3, n_jobs=jobs
            )
            for jobs in (None, 2, 4)
        ]
        baseline = results[0]
        for other in results[1:]:
            for key, cell in baseline.cells.items():
                assert cell.errors == other.cells[key].errors

    def test_explicit_backend_instance_honoured(self, tiny_dataset):
        with SerialBackend() as backend:
            result = run_experiment(
                tiny_dataset, ALGOS, n_splits=2, seed=3, backend=backend
            )
        assert not result.cell("SRDA", "5").failed

    def test_process_backend_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="process"):
            run_experiment(
                tiny_dataset, ALGOS, n_splits=2, seed=3, backend="process"
            )
