"""Forced Cholesky breakdowns must degrade through the fallback chain."""

import warnings

import numpy as np
import pytest

from repro.baselines.ridge import RidgeClassifier
from repro.core.kernel_srda import KernelSRDA
from repro.core.solver_config import SolverConfig
from repro.core.srda import SRDA
from repro.robustness import RobustnessWarning

pytestmark = pytest.mark.robustness


@pytest.fixture
def rank_deficient(rng):
    """m > n data whose Gram matrix is exactly singular (duplicate and
    zero columns), with real class structure in the healthy features."""
    m, n_classes = 45, 3
    y = np.arange(m) % n_classes
    base = rng.standard_normal((m, 4))
    for k in range(n_classes):
        base[y == k, k] += 4.0
    X = np.hstack([base, base[:, :2], np.zeros((m, 2))])
    return X, y


class TestSRDAFallback:
    def test_breakdown_no_longer_raises_by_default(self, rank_deficient):
        """The acceptance scenario: rank-deficient Gram, alpha=0."""
        X, y = rank_deficient
        with pytest.warns(RobustnessWarning, match="degraded"):
            model = SRDA(alpha=0.0, config=SolverConfig(solver="normal")).fit(X, y)
        report = model.fit_report_
        # the report names the fallback taken, ...
        assert report.solver in ("cholesky+jitter", "lsqr-rescue")
        assert any("cholesky failed" in step for step in report.fallbacks)
        # ... the condition estimate, ...
        assert report.condition_estimate is not None
        assert report.condition_estimate > 1.0
        # ... and the effective alpha.
        assert report.effective_alpha is not None
        if report.solver == "cholesky+jitter":
            assert report.effective_alpha > 0.0
        # and the fit is actually usable
        assert model.score(X, y) > 0.9

    def test_degraded_embedding_matches_reference_on_data(self, rank_deficient):
        """Any null-space ambiguity in the degraded solve is invisible
        where it matters: the training embedding equals the one from a
        reference min-norm least-squares fit."""
        X, y = rank_deficient
        with pytest.warns(RobustnessWarning):
            model = SRDA(alpha=0.0, config=SolverConfig(solver="normal")).fit(X, y)
        centered = X - X.mean(axis=0)
        reference, *_ = np.linalg.lstsq(centered, model.responses_, rcond=None)
        np.testing.assert_allclose(
            centered @ model.components_, centered @ reference, atol=1e-6
        )

    def test_clean_fit_reports_clean(self, small_classification):
        X, y = small_classification
        model = SRDA(alpha=1.0, config=SolverConfig(solver="normal")).fit(X, y)
        report = model.fit_report_
        assert report.solver == "cholesky"
        assert report.fallbacks == []
        assert report.effective_alpha == 1.0
        assert not report.degraded
        assert np.isfinite(report.condition_estimate)

    def test_lsqr_path_records_termination_codes(self, small_classification):
        X, y = small_classification
        model = SRDA(alpha=1.0, config=SolverConfig(solver="lsqr"), max_iter=15, tol=0.0).fit(X, y)
        report = model.fit_report_
        assert report.solver == "lsqr"
        assert len(report.lsqr_istop) == 2  # c - 1 response columns
        assert len(report.lsqr_iterations) == 2
        assert len(report.lsqr_residuals) == 2
        assert report.converged

    def test_zero_variance_features_recorded(self, rng):
        X = rng.standard_normal((30, 6))
        X[:, 2] = 7.0  # constant feature
        y = np.arange(30) % 3
        model = SRDA(alpha=1.0, config=SolverConfig(solver="normal")).fit(X, y)
        assert any(
            "zero variance" in w for w in model.fit_report_.warnings
        )

    def test_report_summary_is_one_line(self, small_classification):
        X, y = small_classification
        model = SRDA(alpha=1.0).fit(X, y)
        summary = model.fit_report_.summary()
        assert "\n" not in summary
        assert "solver=" in summary


class TestKernelSRDAFallback:
    def test_singular_kernel_degrades(self, rng):
        # duplicated samples make the linear kernel matrix singular;
        # a tiny alpha is crushed by the kernel's scale, breaking the
        # factorization in floating point
        base = rng.standard_normal((12, 3)) * 100.0
        X = np.vstack([base, base])
        y = np.concatenate([np.arange(12) % 2, np.arange(12) % 2])
        model = KernelSRDA(alpha=1e-12, kernel="linear")
        with warnings.catch_warnings():
            warnings.simplefilter("always")
            model.fit(X, y)  # must not raise
        report = model.fit_report_
        assert report is not None
        if report.fallbacks:
            assert report.solver in ("cholesky+jitter", "lsqr-rescue")

    def test_clean_kernel_fit_reports(self, small_classification):
        X, y = small_classification
        model = KernelSRDA(alpha=1.0, kernel="rbf").fit(X, y)
        assert model.fit_report_.solver == "cholesky"


class TestRidgeClassifierReport:
    def test_normal_path_report(self, small_classification):
        X, y = small_classification
        model = RidgeClassifier(alpha=0.5, config=SolverConfig(solver="normal")).fit(X, y)
        assert model.fit_report_.solver == "cholesky"
        assert model.fit_report_.effective_alpha == 0.5

    def test_lsqr_path_report(self, small_classification):
        X, y = small_classification
        model = RidgeClassifier(alpha=0.5, config=SolverConfig(solver="lsqr"), max_iter=25).fit(X, y)
        assert model.fit_report_.solver == "lsqr"
        assert len(model.fit_report_.lsqr_istop) == 3

    def test_alpha_zero_uses_lstsq(self, small_classification):
        X, y = small_classification
        model = RidgeClassifier(alpha=0.0, config=SolverConfig(solver="normal")).fit(X, y)
        assert model.fit_report_.solver == "lstsq"
