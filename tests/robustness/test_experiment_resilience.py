"""Resilient sweeps: retries, timeouts, and checkpoint/resume."""

import time

import numpy as np
import pytest

from repro.core.solver_config import SolverConfig
from repro.core.srda import SRDA
from repro.datasets.base import Dataset
from repro.eval.experiment import run_experiment
from repro.robustness import RobustnessWarning

pytestmark = pytest.mark.robustness


@pytest.fixture
def dataset(rng):
    m, n_classes = 36, 3
    y = np.arange(m) % n_classes
    X = rng.standard_normal((m, 5))
    for k in range(n_classes):
        X[y == k, k] += 3.0
    return Dataset(
        name="resilience-toy",
        X=X,
        y=y,
        metadata={"split_protocol": "per_class_within", "train_sizes": [4]},
    )


class CountingSRDA(SRDA):
    """SRDA that records every fit in a shared list."""

    def __init__(self, fit_log, fail_first=0, sleep_seconds=0.0):
        super().__init__(alpha=1.0, config=SolverConfig(solver="normal"))
        self._fit_log = fit_log
        self._fail_first = fail_first
        self._sleep_seconds = sleep_seconds

    def fit(self, X, y):
        self._fit_log.append(1)
        if len(self._fit_log) <= self._fail_first:
            raise RuntimeError("injected transient fit failure")
        if self._sleep_seconds:
            time.sleep(self._sleep_seconds)
        return super().fit(X, y)


class TestRetries:
    def test_transient_failure_recovered_by_retry(self, dataset):
        log = []
        result = run_experiment(
            dataset,
            {"SRDA": lambda: CountingSRDA(log, fail_first=2)},
            n_splits=3,
            retries=2,
        )
        cell = result.cell("SRDA", "4")
        assert not cell.failed
        assert len(cell.errors) == 3
        assert cell.retries == 2  # both early failures were retried

    def test_persistent_failure_exhausts_retries(self, dataset):
        log = []
        result = run_experiment(
            dataset,
            {"SRDA": lambda: CountingSRDA(log, fail_first=10**6)},
            n_splits=2,
            retries=1,
            continue_on_error=True,
        )
        cell = result.cell("SRDA", "4")
        assert cell.failed
        assert "injected transient fit failure" in cell.failure
        assert cell.errors == []

    def test_retries_without_continue_on_error_reraises(self, dataset):
        log = []
        with pytest.raises(RuntimeError, match="injected"):
            run_experiment(
                dataset,
                {"SRDA": lambda: CountingSRDA(log, fail_first=10**6)},
                n_splits=2,
                retries=1,
            )

    def test_negative_retries_rejected(self, dataset):
        with pytest.raises(ValueError, match="retries"):
            run_experiment(dataset, {"SRDA": SRDA}, n_splits=1, retries=-1)


class TestTimeout:
    def test_slow_fit_marks_cell_failed(self, dataset):
        log = []
        result = run_experiment(
            dataset,
            {
                "slow": lambda: CountingSRDA(log, sleep_seconds=0.05),
                "fast": lambda: SRDA(alpha=1.0),
            },
            n_splits=3,
            fit_timeout_seconds=0.01,
        )
        slow = result.cell("slow", "4")
        assert slow.failed
        assert "timeout" in slow.failure
        assert slow.errors == []
        # the slow algorithm is skipped for the remaining splits
        assert len(log) == 1
        # other algorithms are unaffected
        fast = result.cell("fast", "4")
        assert not fast.failed
        assert len(fast.errors) == 3


class TestCheckpointResume:
    def test_resume_skips_completed_splits(self, dataset, tmp_path):
        checkpoint = tmp_path / "sweep.json"
        log = []
        # first run dies on the third split (after 2 splits checkpointed)
        with pytest.raises(RuntimeError):
            run_experiment(
                dataset,
                {"SRDA": lambda: CountingSRDA(log, fail_first=0)
                 if len(log) < 2
                 else CountingSRDA(log, fail_first=10**6)},
                n_splits=4,
                seed=7,
                checkpoint_path=checkpoint,
            )
        assert checkpoint.exists()
        assert len(log) >= 2

        # second run resumes: only the remaining splits are fitted
        resumed_log = []
        result = run_experiment(
            dataset,
            {"SRDA": lambda: CountingSRDA(resumed_log)},
            n_splits=4,
            seed=7,
            checkpoint_path=checkpoint,
        )
        cell = result.cell("SRDA", "4")
        assert len(cell.errors) == 4
        assert len(resumed_log) == 2  # splits 0 and 1 were restored
        assert not checkpoint.exists()  # cleaned up on success

    def test_resumed_results_match_uninterrupted_run(self, dataset, tmp_path):
        checkpoint = tmp_path / "sweep.json"
        log = []
        with pytest.raises(RuntimeError):
            run_experiment(
                dataset,
                {"SRDA": lambda: CountingSRDA(log)
                 if len(log) < 2
                 else CountingSRDA(log, fail_first=10**6)},
                n_splits=4,
                seed=11,
                checkpoint_path=checkpoint,
            )
        resumed = run_experiment(
            dataset,
            {"SRDA": lambda: SRDA(alpha=1.0, config=SolverConfig(solver="normal"))},
            n_splits=4,
            seed=11,
            checkpoint_path=checkpoint,
        )
        straight = run_experiment(
            dataset,
            {"SRDA": lambda: SRDA(alpha=1.0, config=SolverConfig(solver="normal"))},
            n_splits=4,
            seed=11,
        )
        np.testing.assert_allclose(
            resumed.cell("SRDA", "4").errors,
            straight.cell("SRDA", "4").errors,
        )

    def test_mismatched_checkpoint_ignored_with_warning(
        self, dataset, tmp_path
    ):
        checkpoint = tmp_path / "sweep.json"
        log = []
        with pytest.raises(RuntimeError):
            run_experiment(
                dataset,
                {"SRDA": lambda: CountingSRDA(log)
                 if len(log) < 2
                 else CountingSRDA(log, fail_first=10**6)},
                n_splits=4,
                seed=3,
                checkpoint_path=checkpoint,
            )
        # different seed → different sweep → checkpoint must not be used
        fresh_log = []
        with pytest.warns(RobustnessWarning, match="different sweep"):
            result = run_experiment(
                dataset,
                {"SRDA": lambda: CountingSRDA(fresh_log)},
                n_splits=4,
                seed=4,
                checkpoint_path=checkpoint,
            )
        assert len(fresh_log) == 4  # nothing was skipped
        assert len(result.cell("SRDA", "4").errors) == 4

    def test_garbage_checkpoint_ignored_with_warning(self, dataset, tmp_path):
        checkpoint = tmp_path / "sweep.json"
        checkpoint.write_text("{not json")
        with pytest.warns(RobustnessWarning, match="unreadable"):
            result = run_experiment(
                dataset,
                {"SRDA": lambda: SRDA(alpha=1.0)},
                n_splits=2,
                checkpoint_path=checkpoint,
            )
        assert len(result.cell("SRDA", "4").errors) == 2
