"""The guarded solver chain: Cholesky → jittered retries → LSQR rescue."""

import numpy as np
import pytest

from repro.linalg.cholesky import NotPositiveDefiniteError, cholesky
from repro.robustness import (
    FitReport,
    GuardedSolveResult,
    SolverFailure,
    estimate_condition,
    guarded_solve,
)

pytestmark = pytest.mark.robustness


def _spd(rng, n, cond=10.0):
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eigs = np.linspace(1.0, cond, n)
    return Q @ np.diag(eigs) @ Q.T


def _singular_gram(rng, n, rank):
    """Exactly rank-deficient PSD matrix (Gram of `rank` columns)."""
    B = rng.standard_normal((n, rank))
    return B @ B.T


class TestCleanPath:
    def test_spd_solve_matches_numpy(self, rng):
        A = _spd(rng, 12)
        b = rng.standard_normal(12)
        result = guarded_solve(A, b)
        assert result.solver == "cholesky"
        assert result.fallbacks == []
        np.testing.assert_allclose(result.x, np.linalg.solve(A, b), rtol=1e-8)

    def test_alpha_added_on_diagonal(self, rng):
        A = _spd(rng, 8)
        b = rng.standard_normal(8)
        result = guarded_solve(A, b, alpha=2.5)
        expected = np.linalg.solve(A + 2.5 * np.eye(8), b)
        np.testing.assert_allclose(result.x, expected, rtol=1e-8)
        assert result.effective_alpha == 2.5

    def test_matrix_rhs(self, rng):
        A = _spd(rng, 10)
        B = rng.standard_normal((10, 3))
        result = guarded_solve(A, B, alpha=0.1)
        assert result.x.shape == (10, 3)

    def test_condition_estimate_reasonable(self, rng):
        A = _spd(rng, 20, cond=100.0)
        result = guarded_solve(A, rng.standard_normal(20))
        true_cond = np.linalg.cond(A)
        assert 0.1 * true_cond <= result.condition_estimate <= 10 * true_cond


class TestFallbackChain:
    def test_singular_gram_triggers_jitter(self, rng):
        G = _singular_gram(rng, 10, rank=4)
        with pytest.raises(NotPositiveDefiniteError):
            cholesky(G)  # the raw factorization really does break
        result = guarded_solve(G, rng.standard_normal(10), alpha=0.0)
        assert result.solver in ("cholesky+jitter", "lsqr-rescue")
        assert result.fallbacks  # the breakdown was recorded
        assert "cholesky failed" in result.fallbacks[0]
        assert np.all(np.isfinite(result.x))

    def test_jitter_solution_solves_consistent_system(self, rng):
        """The jittered solve nails the range space (the part that
        affects predictions); any null-space component is roundoff noise
        the chain does not promise to remove — only the LSQR rescue
        returns the min-norm solution."""
        G = _singular_gram(rng, 8, rank=5)
        b = G @ rng.standard_normal(8)  # consistent system
        result = guarded_solve(G, b, alpha=0.0)
        residual = np.linalg.norm(G @ result.x - b) / np.linalg.norm(b)
        assert residual < 1e-8
        expected, *_ = np.linalg.lstsq(G, b, rcond=None)
        U, s, Vt = np.linalg.svd(G)
        range_basis = Vt[:5]
        np.testing.assert_allclose(
            range_basis @ result.x, range_basis @ expected, atol=1e-8
        )

    def test_effective_alpha_escalates_from_base(self, rng):
        G = _singular_gram(rng, 10, rank=3)
        result = guarded_solve(G, rng.standard_normal(10), alpha=0.0)
        if result.solver == "cholesky+jitter":
            assert result.effective_alpha > 0.0

    def test_merges_into_fit_report(self, rng):
        G = _singular_gram(rng, 10, rank=4)
        report = FitReport()
        guarded_solve(G, rng.standard_normal(10), alpha=0.0, report=report)
        assert report.solver in ("cholesky+jitter", "lsqr-rescue")
        assert report.fallbacks
        assert report.effective_alpha is not None
        assert report.condition_estimate is not None
        assert report.degraded

    def test_lsqr_rescue_when_jitter_disabled(self, rng):
        G = _singular_gram(rng, 8, rank=4)
        b = G @ rng.standard_normal(8)
        result = guarded_solve(G, b, alpha=0.0, max_jitter_retries=0)
        assert result.solver == "lsqr-rescue"
        assert result.lsqr_istop is not None
        assert len(result.lsqr_istop) == 1
        assert result.lsqr_iterations is not None
        expected, *_ = np.linalg.lstsq(G, b, rcond=None)
        np.testing.assert_allclose(result.x, expected, atol=1e-5)

    def test_rescue_records_per_column_diagnostics(self, rng):
        G = _singular_gram(rng, 8, rank=4)
        B = G @ rng.standard_normal((8, 3))
        result = guarded_solve(G, B, alpha=0.0, max_jitter_retries=0)
        assert len(result.lsqr_istop) == 3
        assert len(result.lsqr_residuals) == 3

    def test_non_finite_input_raises_solver_failure(self, rng):
        G = np.full((4, 4), np.nan)
        with pytest.raises(SolverFailure) as excinfo:
            guarded_solve(G, np.ones(4))
        assert excinfo.value.attempts  # the full attempt log is attached


class TestConditionEstimate:
    def test_identity_is_one(self):
        eye = np.eye(6)
        L = cholesky(eye)
        assert estimate_condition(eye, L) == pytest.approx(1.0, rel=1e-6)

    def test_without_factor_is_inf(self, rng):
        assert estimate_condition(_spd(rng, 5)) == float("inf")

    def test_empty_matrix(self):
        assert estimate_condition(np.zeros((0, 0))) == 1.0
