"""Degenerate training inputs: graceful degradation instead of crashes."""

import numpy as np
import pytest

from repro.core.base import validate_data
from repro.core.solver_config import SolverConfig
from repro.core.srda import SRDA
from repro.linalg.sparse import CSRMatrix
from repro.robustness import RobustnessWarning

pytestmark = pytest.mark.robustness


class TestValidateDataLocation:
    def test_error_names_rows_and_columns(self, rng):
        X = rng.standard_normal((10, 6))
        X[3, 2] = np.nan
        X[7, 5] = np.inf
        y = np.arange(10) % 2
        with pytest.raises(ValueError) as excinfo:
            validate_data(X, y)
        message = str(excinfo.value)
        assert "rows [3, 7]" in message
        assert "columns [2, 5]" in message
        assert "2 NaN/infinity entries" in message

    def test_error_truncates_long_index_lists(self, rng):
        X = rng.standard_normal((20, 4))
        X[:10, 0] = np.nan
        y = np.arange(20) % 2
        with pytest.raises(ValueError, match=r"\.\.\. \(10 total\)"):
            validate_data(X, y)

    def test_sparse_error_names_rows_and_columns(self, rng):
        dense = np.zeros((6, 5))
        dense[2, 1] = np.nan
        dense[4, 3] = 1.0
        X = CSRMatrix.from_dense(dense)
        y = np.arange(6) % 2
        with pytest.raises(ValueError, match=r"rows \[2\].*columns \[1\]"):
            validate_data(X, y)

    def test_warn_policy_sanitizes_dense(self, rng):
        X = rng.standard_normal((10, 4))
        X[1, 1] = np.nan
        X[2, 3] = -np.inf
        y = np.arange(10) % 2
        with pytest.warns(RobustnessWarning, match="replacing them with 0"):
            cleaned, _, _ = validate_data(X, y, on_invalid="warn")
        assert np.all(np.isfinite(cleaned))
        assert cleaned[1, 1] == 0.0
        assert cleaned[2, 3] == 0.0
        # the caller's array is untouched
        assert np.isnan(X[1, 1])

    def test_warn_policy_sanitizes_sparse(self, rng):
        dense = np.zeros((6, 5))
        dense[2, 1] = np.nan
        dense[3, 2] = 5.0
        X = CSRMatrix.from_dense(dense)
        y = np.arange(6) % 2
        with pytest.warns(RobustnessWarning):
            cleaned, _, _ = validate_data(X, y, on_invalid="warn")
        assert np.all(np.isfinite(cleaned.data))
        assert np.isnan(X.data).any()  # original untouched

    def test_rejects_unknown_policy(self, rng):
        X = rng.standard_normal((4, 2))
        with pytest.raises(ValueError, match="on_invalid"):
            validate_data(X, np.array([0, 1, 0, 1]), on_invalid="ignore")

    def test_min_classes_one_accepts_single_class(self, rng):
        X = rng.standard_normal((5, 3))
        y = np.zeros(5, dtype=int)
        _, classes, _ = validate_data(X, y, min_classes=1)
        assert classes.shape[0] == 1


class TestSingleClassFit:
    def test_raise_policy_rejects_single_class(self, rng):
        X = rng.standard_normal((8, 4))
        y = np.zeros(8, dtype=int)
        with pytest.raises(ValueError, match="2 classes"):
            SRDA(on_invalid="raise").fit(X, y)

    def test_warn_policy_fits_zero_dim_embedding(self, rng):
        X = rng.standard_normal((8, 4))
        y = np.full(8, 3)
        with pytest.warns(RobustnessWarning, match="only one class"):
            model = SRDA(on_invalid="warn").fit(X, y)
        assert model.components_.shape == (4, 0)
        assert model.transform(X).shape == (8, 0)
        # predict always returns the single class
        np.testing.assert_array_equal(model.predict(X), np.full(8, 3))
        assert model.score(X, y) == 1.0
        assert model.fit_report_.solver == "degenerate"
        assert model.fit_report_.degraded

    def test_dirty_single_class_input(self, rng):
        """Both degradations stack: NaN features AND a single class."""
        X = rng.standard_normal((8, 4))
        X[0, 0] = np.nan
        y = np.zeros(8, dtype=int)
        with pytest.warns(RobustnessWarning):
            model = SRDA(on_invalid="warn").fit(X, y)
        assert model.predict(X[:2]).tolist() == [0, 0]


class TestSingletonClasses:
    def test_singleton_classes_fit_and_warn_recorded(self, rng):
        # 3 classes, one of them a single sample
        X = rng.standard_normal((9, 5))
        y = np.array([0, 0, 0, 0, 1, 1, 1, 1, 2])
        model = SRDA(alpha=1.0).fit(X, y)
        assert any("single" in w for w in model.fit_report_.warnings)
        assert model.components_.shape == (5, 2)

    def test_all_singletons_m_equals_c(self, rng):
        """m == c: every class has exactly one sample.

        The within-class scatter vanishes entirely; the fit must still
        produce a usable c-1 dimensional embedding (alpha keeps the
        system well posed)."""
        m = 6
        X = rng.standard_normal((m, 4)) * 3.0
        y = np.arange(m)
        model = SRDA(alpha=1.0, config=SolverConfig(solver="normal")).fit(X, y)
        assert model.components_.shape == (4, m - 1)
        assert np.all(np.isfinite(model.components_))
        assert model.fit_report_.warnings  # singleton warning recorded
        # training accuracy is perfect: each sample is its own centroid
        assert model.score(X, y) == 1.0

    def test_m_less_than_c_impossible_but_m_equals_c_lsqr(self, rng):
        m = 5
        X = rng.standard_normal((m, 8))
        y = np.arange(m)
        model = SRDA(alpha=1.0, config=SolverConfig(solver="lsqr"), max_iter=30).fit(X, y)
        assert np.all(np.isfinite(model.components_))
        assert model.score(X, y) == 1.0
