"""Corrupted-cache round-trips: detect, name the file, self-heal."""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.datasets.cache import (
    CorruptCacheError,
    cached,
    load_dataset,
    save_dataset,
)
from repro.linalg.sparse import CSRMatrix

pytestmark = pytest.mark.robustness


def _dense_dataset(rng, name="toy"):
    return Dataset(
        name=name,
        X=rng.standard_normal((12, 5)),
        y=np.arange(12) % 3,
        metadata={"split_protocol": "per_class_within", "note": "t"},
    )


def _sparse_dataset(rng):
    dense = rng.standard_normal((10, 6))
    dense[dense < 0.5] = 0.0
    return Dataset(
        name="toy-sparse",
        X=CSRMatrix.from_dense(dense),
        y=np.arange(10) % 2,
        metadata={"pools": np.arange(4)},
    )


def _rewrite_without_key(src, dst, drop):
    """Re-save an archive minus one key (simulated partial write)."""
    with np.load(src, allow_pickle=False) as archive:
        payload = {k: archive[k] for k in archive.files if k != drop}
    with open(dst, "wb") as handle:
        np.savez_compressed(handle, **payload)


def _tamper_entry(src, dst, key):
    """Flip a payload entry without refreshing the stored checksum."""
    with np.load(src, allow_pickle=False) as archive:
        payload = {k: archive[k] for k in archive.files}
    payload[key] = payload[key].copy()
    payload[key].flat[0] = payload[key].flat[0] + 1
    with open(dst, "wb") as handle:
        np.savez_compressed(handle, **payload)


class TestRoundTrip:
    def test_dense_round_trip(self, rng, tmp_path):
        dataset = _dense_dataset(rng)
        path = save_dataset(dataset, tmp_path / "toy")
        loaded = load_dataset(path)
        assert loaded.name == "toy"
        np.testing.assert_array_equal(loaded.X, dataset.X)
        np.testing.assert_array_equal(loaded.y, dataset.y)
        assert loaded.metadata["note"] == "t"

    def test_sparse_round_trip(self, rng, tmp_path):
        dataset = _sparse_dataset(rng)
        path = save_dataset(dataset, tmp_path / "toy")
        loaded = load_dataset(path)
        assert loaded.is_sparse
        np.testing.assert_array_equal(
            loaded.X.to_dense(), dataset.X.to_dense()
        )
        np.testing.assert_array_equal(loaded.metadata["pools"], np.arange(4))

    def test_save_leaves_no_temp_files(self, rng, tmp_path):
        save_dataset(_dense_dataset(rng), tmp_path / "toy")
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "absent.npz")


class TestCorruptionDetection:
    def test_garbage_bytes_named_in_error(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CorruptCacheError) as excinfo:
            load_dataset(path)
        assert str(path) in str(excinfo.value)
        assert excinfo.value.path == path
        assert "unreadable" in excinfo.value.reason

    def test_truncated_archive(self, rng, tmp_path):
        path = save_dataset(_dense_dataset(rng), tmp_path / "toy")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CorruptCacheError):
            load_dataset(path)

    def test_missing_required_key(self, rng, tmp_path):
        path = save_dataset(_dense_dataset(rng), tmp_path / "toy")
        broken = tmp_path / "broken.npz"
        _rewrite_without_key(path, broken, drop="y")
        with pytest.raises(CorruptCacheError, match="missing required keys"):
            load_dataset(broken)

    def test_missing_payload_key(self, rng, tmp_path):
        path = save_dataset(_dense_dataset(rng), tmp_path / "toy")
        broken = tmp_path / "broken.npz"
        _rewrite_without_key(path, broken, drop="X")
        with pytest.raises(CorruptCacheError, match="payload keys"):
            load_dataset(broken)

    def test_checksum_mismatch(self, rng, tmp_path):
        path = save_dataset(_dense_dataset(rng), tmp_path / "toy")
        tampered = tmp_path / "tampered.npz"
        _tamper_entry(path, tampered, key="y")
        with pytest.raises(CorruptCacheError, match="checksum mismatch"):
            load_dataset(tampered)

    def test_legacy_archive_without_checksum_loads(self, rng, tmp_path):
        path = save_dataset(_dense_dataset(rng), tmp_path / "toy")
        legacy = tmp_path / "legacy.npz"
        _rewrite_without_key(path, legacy, drop="checksum")
        loaded = load_dataset(legacy)
        assert loaded.name == "toy"


class TestSelfHealing:
    def test_cached_generates_and_reuses(self, rng, tmp_path):
        calls = []

        def builder():
            calls.append(1)
            return _dense_dataset(rng)

        path = tmp_path / "cache"
        first = cached(builder, path)
        second = cached(builder, path)
        assert len(calls) == 1
        np.testing.assert_array_equal(first.X, second.X)

    def test_cached_regenerates_corrupt_file(self, rng, tmp_path):
        calls = []

        def builder():
            calls.append(1)
            return _dense_dataset(rng)

        path = tmp_path / "cache.npz"
        path.write_bytes(b"garbage")
        dataset = cached(builder, path)
        assert len(calls) == 1
        assert dataset.name == "toy"
        # the healed file is valid now
        assert load_dataset(path).name == "toy"

    def test_cached_can_refuse_to_regenerate(self, rng, tmp_path):
        path = tmp_path / "cache.npz"
        path.write_bytes(b"garbage")
        with pytest.raises(CorruptCacheError):
            cached(
                lambda: _dense_dataset(rng),
                path,
                regenerate_on_corruption=False,
            )
        assert path.exists()  # refusal must not delete the evidence
