"""CLI failure paths: one-line errors, non-zero exits, self-healing cache."""

import pytest

from repro.cli import build_parser, main
from repro.datasets.cache import load_dataset

pytestmark = pytest.mark.robustness


class TestErrorExit:
    def test_impossible_split_exits_one_with_one_line(self, capsys):
        # 10**6 per class cannot be satisfied → ValueError from the
        # splitter, surfaced as a single actionable stderr line
        code = main(
            ["bench", "pie", "--sizes", "1000000", "--splits", "1",
             "--algorithms", "srda"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ValueError:")
        assert err.strip().count("\n") == 0

    def test_unknown_algorithm_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["bench", "pie", "--algorithms", "no-such-algo"])


class TestCacheFlag:
    def test_corrupt_cache_is_regenerated(self, tmp_path, capsys):
        cache = tmp_path / "pie.npz"
        cache.write_bytes(b"definitely not an npz archive")
        code = main(
            ["bench", "pie", "--cache", str(cache), "--sizes", "5",
             "--splits", "1", "--algorithms", "srda"]
        )
        assert code == 0
        # the corrupt file was replaced by a valid archive
        assert load_dataset(cache).name
        assert "SRDA" in capsys.readouterr().out


class TestParserFlags:
    def test_robustness_flags_present(self):
        parser = build_parser()
        args = parser.parse_args(
            ["bench", "pie", "--fail-fast", "--retries", "2",
             "--checkpoint", "ck.json", "--cache", "d.npz"]
        )
        assert args.fail_fast is True
        assert args.retries == 2
        assert args.checkpoint == "ck.json"
        assert args.cache == "d.npz"

    def test_fail_fast_defaults_off(self):
        args = build_parser().parse_args(["bench", "pie"])
        assert args.fail_fast is False
        assert args.retries == 0
