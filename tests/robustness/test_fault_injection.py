"""Fault-injected mat-vecs: LSQR must flag failure, never return garbage."""

import numpy as np
import pytest

from repro.core.solver_config import SolverConfig
from repro.core.srda import SRDA
from repro.linalg.lsqr import FAILURE_ISTOPS, ISTOP_REASONS, lsqr
from repro.linalg.operators import (
    DenseOperator,
    FaultyOperator,
    InjectedFaultError,
)
from repro.robustness import RobustnessWarning

pytestmark = pytest.mark.robustness


@pytest.fixture
def system(rng):
    A = rng.standard_normal((40, 12))
    x_true = rng.standard_normal(12)
    return A, A @ x_true


class TestFaultyOperator:
    def test_clean_passthrough(self, rng, system):
        A, b = system
        op = FaultyOperator(DenseOperator(A))  # no schedule → no faults
        np.testing.assert_array_equal(op.matvec(np.ones(12)), A @ np.ones(12))
        assert op.n_faults_injected == 0

    def test_nan_injection_on_schedule(self, rng, system):
        A, _ = system
        op = FaultyOperator(DenseOperator(A), fail_at={1})
        first = op.matvec(np.ones(12))
        second = op.matvec(np.ones(12))
        assert np.all(np.isfinite(first))
        assert np.isnan(second[0])
        assert op.n_faults_injected == 1

    def test_counter_spans_both_directions(self, rng, system):
        A, _ = system
        op = FaultyOperator(DenseOperator(A), fail_at={1})
        op.matvec(np.ones(12))           # product 0: clean
        out = op.rmatvec(np.ones(40))    # product 1: poisoned
        assert np.isnan(out[0])

    def test_raise_mode(self, rng, system):
        A, _ = system
        op = FaultyOperator(DenseOperator(A), fail_at={0}, mode="raise")
        with pytest.raises(InjectedFaultError, match="product #0"):
            op.matvec(np.ones(12))

    def test_fail_every(self, rng, system):
        A, _ = system
        op = FaultyOperator(DenseOperator(A), fail_every=2)
        op.matvec(np.ones(12))
        op.matvec(np.ones(12))
        op.matvec(np.ones(12))
        op.matvec(np.ones(12))
        assert op.n_faults_injected == 2

    def test_rejects_unknown_mode(self, rng, system):
        A, _ = system
        with pytest.raises(ValueError, match="mode"):
            FaultyOperator(DenseOperator(A), mode="drop")


class TestLSQRUnderFaults:
    def test_nan_matvec_sets_istop_8(self, system):
        A, b = system
        op = FaultyOperator(DenseOperator(A), fail_at={4}, mode="nan")
        result = lsqr(op, b, iter_lim=30)
        assert result.istop == 8
        assert result.failed
        assert not result.converged
        assert "non-finite" in result.stop_reason
        # the solution is the last finite iterate, not NaN soup
        assert np.all(np.isfinite(result.x))

    def test_inf_rmatvec_sets_istop_8(self, system):
        A, b = system
        op = FaultyOperator(DenseOperator(A), fail_at={5}, mode="inf")
        result = lsqr(op, b, iter_lim=30)
        assert result.istop == 8

    def test_raise_mode_propagates(self, system):
        A, b = system
        op = FaultyOperator(DenseOperator(A), fail_at={4}, mode="raise")
        with pytest.raises(InjectedFaultError):
            lsqr(op, b, iter_lim=30)

    def test_clean_run_still_converges(self, system):
        A, b = system
        result = lsqr(FaultyOperator(DenseOperator(A)), b, iter_lim=100)
        assert result.converged
        assert result.istop in (1, 2, 4, 5)

    def test_failure_codes_have_reasons(self):
        for code in FAILURE_ISTOPS:
            assert code in ISTOP_REASONS


class TestSRDAUnderFaults:
    def test_lsqr_fault_surfaces_on_report(self, rng):
        X = rng.standard_normal((30, 10))
        y = np.arange(30) % 3
        model = SRDA(alpha=1.0, config=SolverConfig(solver="lsqr"), max_iter=15)

        original_fit_lsqr = model._ridge_lsqr

        def poisoned(op, targets, report):
            return original_fit_lsqr(
                FaultyOperator(op, fail_at={3}, mode="nan"), targets, report
            )

        model._ridge_lsqr = poisoned
        with pytest.warns(RobustnessWarning, match="istop=8"):
            model.fit(X, y)
        assert not model.fit_report_.converged
        assert 8 in model.fit_report_.lsqr_istop
        assert model.fit_report_.warnings
