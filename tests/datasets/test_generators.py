"""Unit tests for the four synthetic dataset generators.

Each generator must (a) match the declared shape contract, (b) be
deterministic given a seed, (c) produce genuinely class-structured data
(a discriminant model beats chance comfortably) without being trivially
separable at one sample per class.
"""

import numpy as np
import pytest

from repro.core.srda import SRDA
from repro.datasets import (
    make_digits,
    make_faces,
    make_spoken_letters,
    make_text,
    per_class_split,
)
from repro.datasets.faces import PIE_IMAGES_PER_SUBJECT, PIE_SUBJECTS
from repro.datasets.text import NEWS_CLASSES


class TestFaces:
    def test_shape_contract(self):
        d = make_faces(n_subjects=5, images_per_subject=8, side=16, seed=0)
        assert d.X.shape == (40, 256)
        assert d.n_classes == 5
        assert d.metadata["split_protocol"] == "per_class_within"

    def test_default_shape_matches_table2(self):
        # don't generate the full set; just check the declared defaults
        assert PIE_SUBJECTS * PIE_IMAGES_PER_SUBJECT == 11560

    def test_pixels_in_unit_interval(self):
        d = make_faces(n_subjects=3, images_per_subject=5, side=16, seed=1)
        assert d.X.min() >= 0.0 and d.X.max() <= 1.0

    def test_deterministic(self):
        a = make_faces(n_subjects=3, images_per_subject=4, side=16, seed=7)
        b = make_faces(n_subjects=3, images_per_subject=4, side=16, seed=7)
        assert np.array_equal(a.X, b.X)

    def test_seed_changes_data(self):
        a = make_faces(n_subjects=3, images_per_subject=4, side=16, seed=7)
        b = make_faces(n_subjects=3, images_per_subject=4, side=16, seed=8)
        assert not np.array_equal(a.X, b.X)

    def test_side_validation(self):
        with pytest.raises(ValueError):
            make_faces(n_subjects=2, images_per_subject=2, side=30)

    def test_class_structure_learnable(self, rng):
        d = make_faces(n_subjects=8, images_per_subject=20, side=16, seed=2)
        train, test = per_class_split(d.y, 8, rng)
        model = SRDA(alpha=1.0).fit(*d.subset(train))
        error = 1.0 - model.score(*d.subset(test))
        # 16x16 thumbnails carry less identity detail than the full 32x32;
        # chance error for 8 classes is 0.875
        assert error < 0.45

    def test_within_class_variation_exists(self):
        d = make_faces(n_subjects=2, images_per_subject=10, side=16, seed=3)
        first_class = d.X[d.y == 0]
        assert np.linalg.norm(first_class.std(axis=0)) > 0.1


class TestDigits:
    def test_shape_and_pools(self):
        d = make_digits(n_train=100, n_test=60, side=14, seed=0)
        assert d.X.shape == (160, 196)
        assert np.array_equal(d.metadata["train_pool"], np.arange(100))
        assert np.array_equal(d.metadata["test_pool"], np.arange(100, 160))
        assert d.metadata["split_protocol"] == "per_class_from_pool"

    def test_all_ten_digits_present_in_both_pools(self):
        d = make_digits(n_train=100, n_test=100, side=14, seed=0)
        assert set(d.y[d.metadata["train_pool"]]) == set(range(10))
        assert set(d.y[d.metadata["test_pool"]]) == set(range(10))

    def test_pixels_in_unit_interval(self):
        d = make_digits(n_train=50, n_test=50, side=14, seed=1)
        assert d.X.min() >= 0.0 and d.X.max() <= 1.0

    def test_deterministic(self):
        a = make_digits(n_train=30, n_test=30, side=14, seed=4)
        b = make_digits(n_train=30, n_test=30, side=14, seed=4)
        assert np.array_equal(a.X, b.X)

    def test_class_structure_learnable(self, rng):
        d = make_digits(n_train=300, n_test=300, seed=2)
        train = d.metadata["train_pool"]
        test = d.metadata["test_pool"]
        model = SRDA(alpha=1.0).fit(*d.subset(train))
        error = 1.0 - model.score(*d.subset(test))
        assert error < 0.2


class TestSpokenLetters:
    def test_shape_contract(self):
        d = make_spoken_letters(
            n_train_speakers=4, n_test_speakers=3, n_features=100, seed=0
        )
        assert d.X.shape == (7 * 26 * 2, 100)
        assert d.n_classes == 26
        assert d.metadata["train_pool"].shape[0] == 4 * 26 * 2
        assert d.metadata["test_pool"].shape[0] == 3 * 26 * 2

    def test_default_matches_paper_train_size(self):
        # isolet1&2 = 3120 training samples
        d = make_spoken_letters(
            n_train_speakers=60, n_test_speakers=2, n_features=20, seed=0
        )
        assert d.metadata["train_pool"].shape[0] == 3120

    def test_features_in_minus_one_one(self):
        d = make_spoken_letters(
            n_train_speakers=2, n_test_speakers=2, n_features=50, seed=1
        )
        assert d.X.min() >= -1.0 and d.X.max() <= 1.0

    def test_speaker_pools_disjoint(self):
        d = make_spoken_letters(
            n_train_speakers=3, n_test_speakers=3, n_features=40, seed=2
        )
        speakers = d.metadata["speaker_ids"]
        train_speakers = set(speakers[d.metadata["train_pool"]])
        test_speakers = set(speakers[d.metadata["test_pool"]])
        assert not train_speakers & test_speakers

    def test_deterministic(self):
        kwargs = dict(n_train_speakers=2, n_test_speakers=2,
                      n_features=30, seed=9)
        assert np.array_equal(
            make_spoken_letters(**kwargs).X, make_spoken_letters(**kwargs).X
        )

    def test_speaker_shift_hurts_generalization(self, rng):
        """Test error across speaker pools must exceed within-pool error —
        the distribution shift the original Isolet split has."""
        d = make_spoken_letters(
            n_train_speakers=8, n_test_speakers=8, n_features=150, seed=3
        )
        pool = d.metadata["train_pool"]
        test = d.metadata["test_pool"]
        y_pool = d.y[pool]
        # within-pool split
        half = rng.permutation(pool)
        train_within, test_within = half[: len(half) // 2], half[len(half) // 2 :]
        model = SRDA(alpha=1.0).fit(*d.subset(train_within))
        err_within = 1.0 - model.score(*d.subset(test_within))
        model = SRDA(alpha=1.0).fit(*d.subset(train_within))
        err_across = 1.0 - model.score(*d.subset(test))
        assert err_across > err_within


class TestText:
    def test_shape_and_sparsity(self):
        d = make_text(n_docs=200, vocab_size=3000, seed=0)
        assert d.X.shape == (200, 3000)
        assert d.is_sparse
        assert d.n_classes == NEWS_CLASSES
        # sparse: far fewer non-zeros than cells
        assert d.X.nnz < 0.2 * 200 * 3000

    def test_rows_unit_normalized(self):
        d = make_text(n_docs=100, vocab_size=2000, seed=1)
        assert np.allclose(d.X.row_norms(), 1.0, atol=1e-10)

    def test_balanced_classes(self):
        d = make_text(n_docs=200, vocab_size=2000, n_classes=4, seed=2)
        counts = np.bincount(d.y)
        assert counts.max() - counts.min() <= 1

    def test_deterministic(self):
        a = make_text(n_docs=50, vocab_size=1000, seed=5)
        b = make_text(n_docs=50, vocab_size=1000, seed=5)
        assert np.array_equal(a.X.data, b.X.data)
        assert np.array_equal(a.X.indices, b.X.indices)

    def test_class_structure_learnable(self, rng):
        from repro.datasets import ratio_split

        d = make_text(n_docs=800, vocab_size=4000, seed=3)
        train, test = ratio_split(d.y, 0.3, rng)
        model = SRDA(alpha=1.0, solver="lsqr", max_iter=15).fit(*d.subset(train))
        error = 1.0 - model.score(*d.subset(test))
        assert error < 0.4

    def test_ratio_protocol_declared(self):
        d = make_text(n_docs=60, vocab_size=500, seed=0)
        assert d.metadata["split_protocol"] == "ratio"
        assert 0.05 in d.metadata["train_ratios"]
