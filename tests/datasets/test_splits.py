"""Unit tests for the paper's split protocols."""

import numpy as np
import pytest

from repro.datasets.splits import (
    per_class_split,
    per_class_split_from_pool,
    ratio_split,
    split_seeds,
)


@pytest.fixture
def labels(rng):
    return rng.permutation(np.repeat(np.arange(4), 25))


class TestPerClassSplit:
    def test_counts(self, labels, rng):
        train, test = per_class_split(labels, 10, rng)
        assert train.shape[0] == 40
        assert test.shape[0] == 60
        for k in range(4):
            assert (labels[train] == k).sum() == 10

    def test_disjoint_and_complete(self, labels, rng):
        train, test = per_class_split(labels, 5, rng)
        assert len(np.intersect1d(train, test)) == 0
        assert len(np.union1d(train, test)) == labels.shape[0]

    def test_too_many_requested(self, labels, rng):
        with pytest.raises(ValueError):
            per_class_split(labels, 25, rng)

    def test_non_positive_rejected(self, labels, rng):
        with pytest.raises(ValueError):
            per_class_split(labels, 0, rng)

    def test_deterministic_given_seed(self, labels):
        a = per_class_split(labels, 7, np.random.default_rng(5))
        b = per_class_split(labels, 7, np.random.default_rng(5))
        assert np.array_equal(a[0], b[0])

    def test_different_seeds_differ(self, labels):
        a = per_class_split(labels, 7, np.random.default_rng(5))
        b = per_class_split(labels, 7, np.random.default_rng(6))
        assert not np.array_equal(a[0], b[0])


class TestPoolSplit:
    def test_test_pool_fixed(self, labels, rng):
        pool_train = np.arange(0, 60)
        pool_test = np.arange(60, 100)
        train, test = per_class_split_from_pool(
            labels, pool_train, pool_test, 3, rng
        )
        assert np.array_equal(test, pool_test)
        assert np.all(np.isin(train, pool_train))
        for k in np.unique(labels):
            assert (labels[train] == k).sum() == 3

    def test_insufficient_pool(self, labels, rng):
        pool_train = np.arange(0, 8)
        pool_test = np.arange(8, 100)
        with pytest.raises(ValueError, match="pool"):
            per_class_split_from_pool(labels, pool_train, pool_test, 5, rng)


class TestRatioSplit:
    def test_stratified_counts(self, labels, rng):
        train, test = ratio_split(labels, 0.2, rng)
        for k in range(4):
            assert (labels[train] == k).sum() == 5
            assert (labels[test] == k).sum() == 20

    def test_extreme_ratios_keep_one_each_side(self, rng):
        y = np.repeat([0, 1], 3)
        train, test = ratio_split(y, 0.01, rng)
        assert (y[train] == 0).sum() >= 1
        train, test = ratio_split(y, 0.99, rng)
        assert (y[test] == 0).sum() >= 1

    def test_invalid_ratio(self, labels, rng):
        for ratio in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                ratio_split(labels, ratio, rng)

    def test_disjoint_and_complete(self, labels, rng):
        train, test = ratio_split(labels, 0.35, rng)
        assert len(np.intersect1d(train, test)) == 0
        assert len(np.union1d(train, test)) == labels.shape[0]


class TestSplitSeeds:
    def test_deterministic(self):
        assert np.array_equal(split_seeds(3, 5), split_seeds(3, 5))

    def test_distinct(self):
        seeds = split_seeds(3, 20)
        assert len(set(seeds.tolist())) == 20

    def test_different_base_seeds(self):
        assert not np.array_equal(split_seeds(1, 5), split_seeds(2, 5))
