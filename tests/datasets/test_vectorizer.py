"""Unit tests for the text-vectorization substrate."""

import numpy as np
import pytest

from repro.datasets.vectorizer import (
    STOP_WORDS,
    TfVectorizer,
    make_raw_documents,
    strip_suffix,
    tokenize,
)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello WORLD", stem=False) == ["hello", "world"]

    def test_drops_punctuation_and_digits(self):
        tokens = tokenize("error-code 404: retry!", stem=False)
        assert tokens == ["error", "code", "retry"]

    def test_stop_words_removed(self):
        assert "the" not in tokenize("the cat sat on the mat")
        assert "the" in tokenize(
            "the cat", remove_stop_words=False, stem=False
        )

    def test_short_tokens_dropped(self):
        assert tokenize("a b cd", stem=False, remove_stop_words=False) == ["cd"]

    def test_stemming_applied(self):
        assert tokenize("cats running") == ["cat", "runn"]


class TestStripSuffix:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("nations", "nation"),
            ("running", "runn"),
            ("quickly", "quick"),
            ("statement", "stat"),  # longest rule "ement" fires first
            ("cat", "cat"),          # no suffix
            ("es", "es"),            # too short to strip
        ],
    )
    def test_examples(self, token, expected):
        assert strip_suffix(token) == expected

    def test_min_stem_respected(self):
        # "ies" would leave a 1-char stem (skipped); the plain "s" rule
        # still applies since "tie" meets the 3-char minimum
        assert strip_suffix("ties", min_stem=3) == "tie"
        assert strip_suffix("ties", min_stem=4) == "ties"


class TestTfVectorizer:
    @pytest.fixture
    def corpus(self):
        return [
            "apple banana apple cherry",
            "banana cherry banana durian",
            "apple durian cherry cherry",
            "banana apple durian apple",
        ]

    def test_vocabulary_built(self, corpus):
        vec = TfVectorizer(min_df=1, max_df_ratio=1.0, stem=False)
        vec.fit(corpus)
        assert set(vec.vocabulary_) == {"apple", "banana", "cherry", "durian"}
        assert vec.n_features == 4

    def test_rows_unit_normalized(self, corpus):
        X = TfVectorizer(min_df=1, max_df_ratio=1.0,
                         stem=False).fit_transform(corpus)
        assert np.allclose(X.row_norms(), 1.0)

    def test_term_frequencies_proportional(self, corpus):
        vec = TfVectorizer(min_df=1, max_df_ratio=1.0, stem=False)
        X = vec.fit_transform(corpus).to_dense()
        apple = vec.vocabulary_["apple"]
        cherry = vec.vocabulary_["cherry"]
        # doc 0 has 2 apples, 1 cherry
        assert X[0, apple] == pytest.approx(2 * X[0, cherry])

    def test_min_df_filters(self, corpus):
        corpus = corpus + ["zebra only here"]
        vec = TfVectorizer(min_df=2, max_df_ratio=1.0, stem=False)
        vec.fit(corpus)
        assert "zebra" not in vec.vocabulary_

    def test_max_df_filters(self):
        # "common" appears in every document; rarer terms survive
        corpus = [
            "common apple", "common banana", "common apple", "common banana",
        ]
        vec = TfVectorizer(min_df=1, max_df_ratio=0.6, stem=False)
        vec.fit(corpus)
        assert "common" not in vec.vocabulary_
        assert {"apple", "banana"} <= set(vec.vocabulary_)

    def test_max_features_cap(self, corpus):
        vec = TfVectorizer(min_df=1, max_df_ratio=1.0, max_features=2,
                           stem=False)
        vec.fit(corpus)
        assert vec.n_features == 2

    def test_oov_terms_ignored(self, corpus):
        vec = TfVectorizer(min_df=1, max_df_ratio=1.0, stem=False).fit(corpus)
        X = vec.transform(["unknown words only"])
        assert X.nnz == 0
        assert X.shape == (1, vec.n_features)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            TfVectorizer().transform(["doc"])

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            TfVectorizer().fit([])

    def test_all_filtered_rejected(self):
        with pytest.raises(ValueError, match="cutoffs"):
            TfVectorizer(min_df=5, stem=False).fit(["lonely words"])

    def test_deterministic_column_order(self, corpus):
        a = TfVectorizer(min_df=1, max_df_ratio=1.0, stem=False).fit(corpus)
        b = TfVectorizer(min_df=1, max_df_ratio=1.0, stem=False).fit(corpus)
        assert a.vocabulary_ == b.vocabulary_

    def test_validation(self):
        with pytest.raises(ValueError):
            TfVectorizer(min_df=0)
        with pytest.raises(ValueError):
            TfVectorizer(max_df_ratio=0.0)


class TestRawDocumentGenerator:
    def test_shapes_and_determinism(self):
        docs, y = make_raw_documents(n_docs=50, n_classes=3, seed=4)
        assert len(docs) == 50
        assert set(y) == {0, 1, 2}
        docs2, y2 = make_raw_documents(n_docs=50, n_classes=3, seed=4)
        assert docs == docs2
        assert np.array_equal(y, y2)

    def test_contains_stop_words_to_strip(self):
        docs, _ = make_raw_documents(n_docs=10, seed=1)
        joined = " ".join(docs)
        assert any(word in joined.split() for word in STOP_WORDS)

    def test_end_to_end_classification(self):
        from repro.core.srda import SRDA

        docs, y = make_raw_documents(n_docs=200, n_classes=4, seed=2)
        vec = TfVectorizer(min_df=2)
        X_train = vec.fit_transform(docs[:140])
        X_test = vec.transform(docs[140:])
        model = SRDA(alpha=1.0, solver="lsqr", max_iter=15).fit(
            X_train, y[:140]
        )
        error = 1.0 - model.score(X_test, y[140:])
        assert error < 0.2
