"""Unit tests for the Dataset container."""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.linalg.sparse import CSRMatrix


class TestDataset:
    def test_dense_properties(self, rng):
        X = rng.standard_normal((10, 4))
        y = np.array([0, 1] * 5)
        d = Dataset("toy", X, y)
        assert d.n_samples == 10
        assert d.n_features == 4
        assert d.n_classes == 2
        assert not d.is_sparse

    def test_sparse_properties(self, rng):
        dense = rng.standard_normal((6, 5))
        dense[dense < 0.5] = 0
        d = Dataset("toy", CSRMatrix.from_dense(dense), np.arange(6) % 3)
        assert d.is_sparse
        assert d.n_classes == 3

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            Dataset("bad", rng.standard_normal((4, 2)), np.zeros(5))

    def test_2d_labels_rejected(self, rng):
        with pytest.raises(ValueError):
            Dataset("bad", rng.standard_normal((4, 2)), np.zeros((4, 1)))

    def test_subset_dense(self, rng):
        X = rng.standard_normal((8, 3))
        y = np.arange(8) % 2
        d = Dataset("toy", X, y)
        Xs, ys = d.subset(np.array([1, 5, 7]))
        assert np.array_equal(Xs, X[[1, 5, 7]])
        assert np.array_equal(ys, y[[1, 5, 7]])

    def test_subset_sparse(self, rng):
        dense = rng.standard_normal((8, 3))
        dense[dense < 0] = 0
        d = Dataset("toy", CSRMatrix.from_dense(dense), np.arange(8) % 2)
        Xs, ys = d.subset(np.array([0, 4]))
        assert np.array_equal(Xs.to_dense(), dense[[0, 4]])

    def test_statistics_dense(self, rng):
        d = Dataset("toy", rng.standard_normal((10, 4)), np.arange(10) % 5)
        stats = d.statistics()
        assert stats == {
            "name": "toy", "size_m": 10, "dim_n": 4, "classes_c": 5
        }

    def test_statistics_sparse_includes_nnz(self, rng):
        dense = np.zeros((4, 10))
        dense[:, :3] = 1.0
        d = Dataset("toy", CSRMatrix.from_dense(dense), np.arange(4) % 2)
        assert d.statistics()["avg_nnz_per_sample_s"] == 3.0
