"""Unit tests for dataset persistence."""

import numpy as np
import pytest

from repro.datasets import make_digits, make_text
from repro.datasets.cache import cached, load_dataset, save_dataset


class TestRoundTrip:
    def test_dense_dataset(self, tmp_path):
        dataset = make_digits(n_train=40, n_test=20, side=14, seed=3)
        path = save_dataset(dataset, tmp_path / "digits")
        loaded = load_dataset(path)
        assert loaded.name == dataset.name
        assert np.array_equal(loaded.X, dataset.X)
        assert np.array_equal(loaded.y, dataset.y)
        assert loaded.metadata["split_protocol"] == "per_class_from_pool"
        assert np.array_equal(
            loaded.metadata["train_pool"], dataset.metadata["train_pool"]
        )

    def test_sparse_dataset(self, tmp_path):
        dataset = make_text(n_docs=60, vocab_size=500, seed=4)
        path = save_dataset(dataset, tmp_path / "text")
        loaded = load_dataset(path)
        assert loaded.is_sparse
        assert np.array_equal(loaded.X.to_dense(), dataset.X.to_dense())
        assert loaded.metadata["train_ratios"] == [
            0.05, 0.10, 0.20, 0.30, 0.40, 0.50,
        ]

    def test_npz_suffix_appended(self, tmp_path):
        dataset = make_digits(n_train=20, n_test=10, side=14, seed=1)
        path = save_dataset(dataset, tmp_path / "d")
        assert path.suffix == ".npz"


class TestCached:
    def test_miss_then_hit(self, tmp_path):
        path = tmp_path / "cache"
        first = cached(
            make_digits, path, n_train=30, n_test=10, side=14, seed=7
        )
        assert (tmp_path / "cache.npz").exists()
        # hit: different kwargs are IGNORED because the file exists —
        # the path is the cache key
        second = cached(
            make_digits, path, n_train=99, n_test=99, side=14, seed=8
        )
        assert np.array_equal(first.X, second.X)

    def test_corrupt_format_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            format=np.array("matrix-market"),
            name=np.array("x"),
            y=np.zeros(1),
            metadata_json=np.array("{}"),
        )
        with pytest.raises(ValueError, match="format"):
            load_dataset(path)
