"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.linalg.sparse import CSRMatrix


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_classification(rng):
    """A small, well-separated classification problem (m > n).

    Returns ``(X, y)`` with 3 classes of 20 samples in 10 dimensions.
    """
    n_per_class, n_features, n_classes = 20, 10, 3
    centers = 4.0 * rng.standard_normal((n_classes, n_features))
    X = np.vstack(
        [
            centers[k] + rng.standard_normal((n_per_class, n_features))
            for k in range(n_classes)
        ]
    )
    y = np.repeat(np.arange(n_classes), n_per_class)
    shuffle = rng.permutation(X.shape[0])
    return X[shuffle], y[shuffle]


@pytest.fixture
def highdim_classification(rng):
    """An undersampled problem (n > m) with linearly independent samples.

    Returns ``(X, y)`` with 4 classes of 5 samples in 60 dimensions —
    the regime of Corollary 3.
    """
    n_per_class, n_features, n_classes = 5, 60, 4
    centers = 3.0 * rng.standard_normal((n_classes, n_features))
    X = np.vstack(
        [
            centers[k] + rng.standard_normal((n_per_class, n_features))
            for k in range(n_classes)
        ]
    )
    y = np.repeat(np.arange(n_classes), n_per_class)
    return X, y


@pytest.fixture
def sparse_classification(rng):
    """A sparse 5-class problem as (CSRMatrix, dense_copy, y)."""
    m, n, n_classes = 60, 40, 5
    y = np.arange(m) % n_classes
    dense = rng.standard_normal((m, n))
    dense[rng.random((m, n)) < 0.7] = 0.0
    # inject class signal on disjoint coordinate blocks
    for k in range(n_classes):
        cols = slice(8 * k, 8 * k + 4)
        dense[y == k, cols] += 2.0
    return CSRMatrix.from_dense(dense), dense, y
