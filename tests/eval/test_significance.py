"""Unit tests for the paired significance tests."""

import numpy as np
import pytest

from repro.eval.experiment import CellResult, ExperimentResult
from repro.eval.significance import (
    compare_algorithms,
    paired_t_test,
    wilcoxon_signed_rank,
)


class TestPairedT:
    def test_obvious_difference_significant(self, rng):
        a = rng.normal(0.30, 0.01, 20)
        b = rng.normal(0.10, 0.01, 20)
        result = paired_t_test(a, b)
        assert result.significant(0.01)
        assert result.mean_difference > 0.15

    def test_identical_samples_not_significant(self, rng):
        a = rng.normal(0.2, 0.05, 20)
        result = paired_t_test(a, a.copy())
        assert result.p_value == 1.0
        assert not result.significant()

    def test_same_distribution_usually_not_significant(self):
        rejections = 0
        for seed in range(40):
            r = np.random.default_rng(seed)
            a = r.normal(0.2, 0.05, 12)
            b = r.normal(0.2, 0.05, 12)
            rejections += paired_t_test(a, b).significant(0.05)
        # ~5% false positive rate expected; allow generous slack
        assert rejections <= 8

    def test_matches_scipy(self, rng):
        from scipy import stats

        a = rng.normal(0.3, 0.04, 15)
        b = a - rng.normal(0.02, 0.03, 15)
        ours = paired_t_test(a, b)
        theirs = stats.ttest_rel(a, b)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-10)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-8)

    def test_constant_nonzero_difference(self):
        # the difference is constant up to float rounding, so the std is
        # ~1e-17 and the t statistic astronomically large
        a = np.array([0.3, 0.4, 0.5])
        b = a - 0.1
        result = paired_t_test(a, b)
        assert result.p_value < 1e-20
        # an exactly-representable constant difference hits the std == 0 path
        exact = paired_t_test(np.array([1.0, 2.0, 3.0]),
                              np.array([0.5, 1.5, 2.5]))
        assert exact.p_value == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [2.0])
        with pytest.raises(ValueError):
            paired_t_test([1.0, 2.0], [1.0])


class TestWilcoxon:
    def test_obvious_difference_significant(self, rng):
        a = rng.normal(0.30, 0.01, 25)
        b = rng.normal(0.10, 0.01, 25)
        assert wilcoxon_signed_rank(a, b).significant(0.01)

    def test_identical_samples(self, rng):
        a = rng.normal(0.2, 0.05, 10)
        result = wilcoxon_signed_rank(a, a.copy())
        assert result.p_value == 1.0
        assert result.n == 0

    def test_roughly_matches_scipy(self, rng):
        from scipy import stats

        a = rng.normal(0.3, 0.05, 30)
        b = a - rng.normal(0.03, 0.05, 30)
        ours = wilcoxon_signed_rank(a, b)
        theirs = stats.wilcoxon(a, b, correction=False,
                                mode="approx")
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=0.02)

    def test_handles_ties(self):
        a = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        b = a - np.array([0.5, 0.5, 0.5, -0.5, 0.5, 0.5])
        result = wilcoxon_signed_rank(a, b)
        assert 0.0 <= result.p_value <= 1.0


class TestCompareAlgorithms:
    @pytest.fixture
    def result(self):
        cells = {
            ("SRDA", "10"): CellResult(
                errors=[0.10, 0.11, 0.09, 0.10, 0.12], fit_seconds=[0.1] * 5
            ),
            ("LDA", "10"): CellResult(
                errors=[0.30, 0.29, 0.31, 0.28, 0.33], fit_seconds=[1.0] * 5
            ),
            ("RLDA", "10"): CellResult(failure="out of memory"),
        }
        return ExperimentResult(
            dataset_name="toy",
            algorithm_names=["SRDA", "LDA", "RLDA"],
            size_labels=["10"],
            cells=cells,
            n_splits=5,
        )

    def test_srda_significantly_better(self, result):
        comparison = compare_algorithms(result, "SRDA", "LDA", "10")
        assert comparison.mean_difference < 0  # SRDA has lower error
        assert comparison.significant(0.01)

    def test_wilcoxon_variant(self, result):
        comparison = compare_algorithms(
            result, "SRDA", "LDA", "10", test="wilcoxon"
        )
        assert comparison.mean_difference < 0

    def test_failed_cell_rejected(self, result):
        with pytest.raises(ValueError, match="failed"):
            compare_algorithms(result, "SRDA", "RLDA", "10")

    def test_unknown_test_rejected(self, result):
        with pytest.raises(ValueError, match="unknown test"):
            compare_algorithms(result, "SRDA", "LDA", "10", test="sign")
