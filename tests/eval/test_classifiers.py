"""Unit tests for the embedded-space classifiers."""

import numpy as np
import pytest

from repro.eval.classifiers import KNNClassifier, NearestCentroid


@pytest.fixture
def blobs(rng):
    X = np.vstack(
        [
            rng.standard_normal((20, 3)) + offset
            for offset in ([0, 0, 0], [6, 0, 0], [0, 6, 0])
        ]
    )
    y = np.repeat([0, 1, 2], 20)
    return X, y


class TestNearestCentroid:
    def test_separable(self, blobs):
        X, y = blobs
        assert NearestCentroid().fit(X, y).score(X, y) == 1.0

    def test_centroids_are_class_means(self, blobs):
        X, y = blobs
        model = NearestCentroid().fit(X, y)
        for k in range(3):
            assert np.allclose(model.centroids_[k], X[y == k].mean(axis=0))

    def test_string_labels(self, rng):
        X = np.vstack([rng.standard_normal((5, 2)),
                       rng.standard_normal((5, 2)) + 10])
        y = np.array(["a"] * 5 + ["b"] * 5)
        model = NearestCentroid().fit(X, y)
        assert set(model.predict(X)) <= {"a", "b"}

    def test_unfitted(self, rng):
        with pytest.raises(RuntimeError):
            NearestCentroid().predict(rng.standard_normal((2, 3)))

    def test_prediction_is_truly_nearest(self, rng):
        X = rng.standard_normal((30, 4))
        y = rng.integers(0, 3, 30)
        y[:3] = [0, 1, 2]
        model = NearestCentroid().fit(X, y)
        query = rng.standard_normal((10, 4))
        predictions = model.predict(query)
        for i in range(10):
            distances = np.linalg.norm(model.centroids_ - query[i], axis=1)
            assert predictions[i] == model.classes_[np.argmin(distances)]


class TestKNN:
    def test_1nn_training_accuracy_is_perfect(self, blobs):
        X, y = blobs
        assert KNNClassifier(n_neighbors=1).fit(X, y).score(X, y) == 1.0

    def test_k3_majority_vote(self):
        Z = np.array([[0.0], [0.1], [0.2], [10.0]])
        y = np.array([0, 0, 1, 1])
        model = KNNClassifier(n_neighbors=3).fit(Z, y)
        # query at 0.05: neighbors {0, 0.1, 0.2} vote 0,0,1 → class 0
        assert model.predict(np.array([[0.05]]))[0] == 0

    def test_chunking_does_not_change_results(self, blobs, rng):
        X, y = blobs
        query = rng.standard_normal((25, 3))
        a = KNNClassifier(n_neighbors=3, chunk_size=4).fit(X, y).predict(query)
        b = KNNClassifier(n_neighbors=3, chunk_size=1000).fit(X, y).predict(query)
        assert np.array_equal(a, b)

    def test_k_larger_than_train_rejected(self, rng):
        with pytest.raises(ValueError):
            KNNClassifier(n_neighbors=5).fit(
                rng.standard_normal((3, 2)), np.array([0, 1, 0])
            )

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNNClassifier(n_neighbors=0)

    def test_unfitted(self, rng):
        with pytest.raises(RuntimeError):
            KNNClassifier().predict(rng.standard_normal((2, 3)))

    def test_matches_brute_force(self, rng):
        X = rng.standard_normal((40, 5))
        y = rng.integers(0, 4, 40)
        query = rng.standard_normal((15, 5))
        model = KNNClassifier(n_neighbors=1).fit(X, y)
        predictions = model.predict(query)
        for i in range(15):
            nearest = np.argmin(np.linalg.norm(X - query[i], axis=1))
            assert predictions[i] == y[nearest]
