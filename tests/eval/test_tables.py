"""Unit tests for table and figure rendering."""

import numpy as np
import pytest

from repro.eval.experiment import CellResult, ExperimentResult
from repro.eval.tables import (
    FAILED_CELL,
    figure_series,
    format_error_table,
    format_time_table,
    render_ascii_chart,
)


@pytest.fixture
def result():
    cells = {
        ("SRDA", "10"): CellResult(errors=[0.195, 0.205], fit_seconds=[0.2, 0.3]),
        ("SRDA", "20"): CellResult(errors=[0.10, 0.12], fit_seconds=[0.5, 0.5]),
        ("LDA", "10"): CellResult(errors=[0.31, 0.33], fit_seconds=[4.0, 4.5]),
        ("LDA", "20"): CellResult(failure="out of memory"),
    }
    return ExperimentResult(
        dataset_name="toy",
        algorithm_names=["SRDA", "LDA"],
        size_labels=["10", "20"],
        cells=cells,
        n_splits=2,
    )


class TestErrorTable:
    def test_contains_mean_and_std(self, result):
        table = format_error_table(result)
        assert "20.0 ± 0.5" in table  # SRDA at size 10, in percent
        assert "toy" in table

    def test_failed_cell_dash(self, result):
        table = format_error_table(result)
        assert FAILED_CELL in table

    def test_row_per_size(self, result):
        lines = format_error_table(result).splitlines()
        assert any(line.startswith("10") for line in lines)
        assert any(line.startswith("20") for line in lines)

    def test_custom_title(self, result):
        assert format_error_table(result, title="Table III").startswith(
            "Table III"
        )


class TestTimeTable:
    def test_contains_seconds(self, result):
        table = format_time_table(result)
        assert "0.250" in table
        assert "4.250" in table

    def test_failed_cell_dash(self, result):
        assert FAILED_CELL in format_time_table(result)


class TestFigureSeries:
    def test_error_series_in_percent(self, result):
        series = figure_series(result, "error")
        xs, ys = series["SRDA"]
        assert xs == ["10", "20"]
        assert ys[0] == pytest.approx(20.0)

    def test_failed_points_omitted(self, result):
        xs, ys = figure_series(result, "error")["LDA"]
        assert xs == ["10"]
        assert len(ys) == 1

    def test_time_series(self, result):
        xs, ys = figure_series(result, "time")["SRDA"]
        assert ys == pytest.approx([0.25, 0.5])

    def test_invalid_metric(self, result):
        with pytest.raises(ValueError):
            figure_series(result, "f1")


class TestAsciiChart:
    def test_renders_all_series(self, result):
        chart = render_ascii_chart(figure_series(result, "error"), "title")
        assert "title" in chart
        assert "o=SRDA" in chart
        assert "x=LDA" in chart

    def test_empty_series(self):
        chart = render_ascii_chart({}, "empty")
        assert "no data" in chart

    def test_constant_series_no_crash(self):
        chart = render_ascii_chart({"A": (["1", "2"], [5.0, 5.0])}, "flat")
        assert "5.00" in chart
