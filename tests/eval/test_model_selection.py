"""Unit tests for α model selection."""

import numpy as np
import pytest

from repro.core.srda import SRDA
from repro.eval.model_selection import (
    AlphaSearchResult,
    alpha_grid,
    grid_search_alpha,
)
from repro.linalg.sparse import CSRMatrix


class TestAlphaGrid:
    def test_parameterization(self):
        grid = alpha_grid(9)
        ratios = grid / (1.0 + grid)
        assert np.allclose(ratios, np.linspace(0.1, 0.9, 9), atol=1e-12)

    def test_monotone_increasing(self):
        grid = alpha_grid(7)
        assert np.all(np.diff(grid) > 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            alpha_grid(0)


class TestGridSearch:
    @pytest.fixture
    def data(self, rng):
        centers = 2.0 * rng.standard_normal((3, 40))
        y = np.repeat(np.arange(3), 12)
        X = centers[y] + 1.5 * rng.standard_normal((36, 40))
        return X, y

    def test_result_structure(self, data):
        X, y = data
        result = grid_search_alpha(
            lambda a: SRDA(alpha=a, solver="normal"),
            X, y, alphas=[0.1, 1.0, 10.0], n_splits=3, seed=0,
        )
        assert isinstance(result, AlphaSearchResult)
        assert result.alphas.shape == (3,)
        assert result.mean_errors.shape == (3,)
        assert np.all(result.mean_errors >= 0)
        assert np.all(result.mean_errors <= 1)
        assert result.best_alpha in (0.1, 1.0, 10.0)
        assert result.best_error == result.mean_errors.min()
        assert result.flatness() >= 0

    def test_deterministic(self, data):
        X, y = data
        kwargs = dict(alphas=[0.5, 5.0], n_splits=2, seed=3)
        a = grid_search_alpha(lambda a: SRDA(alpha=a), X, y, **kwargs)
        b = grid_search_alpha(lambda a: SRDA(alpha=a), X, y, **kwargs)
        assert np.array_equal(a.mean_errors, b.mean_errors)

    def test_default_grid_used(self, data):
        X, y = data
        result = grid_search_alpha(
            lambda a: SRDA(alpha=a), X, y, n_splits=2, seed=0
        )
        assert result.alphas.shape == (9,)

    def test_sparse_input(self, rng):
        dense = rng.standard_normal((40, 30))
        dense[np.abs(dense) < 1.0] = 0.0
        y = np.arange(40) % 2
        dense[y == 1, :5] += 3.0
        X = CSRMatrix.from_dense(dense)
        result = grid_search_alpha(
            lambda a: SRDA(alpha=a, solver="lsqr", max_iter=30),
            X, y, alphas=[1.0], n_splits=2, seed=0,
        )
        assert np.isfinite(result.mean_errors).all()

    def test_insufficient_samples_rejected(self, rng):
        X = rng.standard_normal((4, 3))
        y = np.array([0, 0, 1, 1])
        with pytest.raises(ValueError, match="hold out"):
            grid_search_alpha(
                lambda a: SRDA(alpha=a), X, y,
                validation_per_class=2, n_splits=1,
            )

    def test_picks_sane_alpha_on_overfit_prone_data(self, rng):
        # undersampled noisy problem: huge alpha should lose to moderate
        n = 60
        centers = 1.5 * rng.standard_normal((3, n))
        y = np.repeat(np.arange(3), 8)
        X = centers[y] + 2.0 * rng.standard_normal((24, n))
        result = grid_search_alpha(
            lambda a: SRDA(alpha=a, solver="normal"),
            X, y, alphas=[1e-6, 1.0, 1e6], n_splits=4, seed=1,
        )
        assert result.best_alpha != 1e6


class TestGridSearchSRDA:
    @pytest.fixture
    def data(self, rng):
        centers = 2.0 * rng.standard_normal((3, 40))
        y = np.repeat(np.arange(3), 12)
        X = centers[y] + 1.5 * rng.standard_normal((36, 40))
        return X, y

    def test_matches_per_alpha_refits(self, data):
        """The shared-bidiagonalization search scores the same models as
        refitting SRDA per alpha, so the error surfaces coincide."""
        from repro.eval.model_selection import grid_search_alpha_srda

        X, y = data
        kwargs = dict(alphas=[0.1, 1.0, 10.0], n_splits=3, seed=0)
        refit = grid_search_alpha(
            lambda a: SRDA(
                alpha=a, solver="lsqr", max_iter=15, tol=0.0
            ),
            X, y, **kwargs,
        )
        shared = grid_search_alpha_srda(
            X, y, max_iter=15, tol=0.0, **kwargs
        )
        assert np.array_equal(refit.alphas, shared.alphas)
        assert np.array_equal(refit.mean_errors, shared.mean_errors)
        assert np.array_equal(refit.std_errors, shared.std_errors)

    def test_sparse_input(self, rng):
        from repro.eval.model_selection import grid_search_alpha_srda

        dense = rng.standard_normal((40, 30))
        dense[np.abs(dense) < 1.0] = 0.0
        y = np.arange(40) % 2
        dense[y == 1, :5] += 3.0
        matrix = CSRMatrix.from_dense(dense)
        result = grid_search_alpha_srda(
            matrix, y, alphas=[0.5, 5.0], n_splits=2, seed=1
        )
        assert isinstance(result, AlphaSearchResult)
        assert result.mean_errors.shape == (2,)

    def test_default_grid(self, data):
        from repro.eval.model_selection import grid_search_alpha_srda

        X, y = data
        result = grid_search_alpha_srda(X, y, n_splits=2, seed=0)
        assert result.alphas.shape == (9,)
