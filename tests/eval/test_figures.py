"""Unit tests for the SVG chart writer."""

import xml.etree.ElementTree as ET

import pytest

from repro.eval.figures import render_svg_chart


@pytest.fixture
def series():
    return {
        "SRDA": (["10", "20", "30"], [19.5, 10.8, 8.4]),
        "LDA": (["10", "20", "30"], [31.8, 20.5, 10.9]),
    }


class TestRenderSvg:
    def test_valid_xml(self, series):
        svg = render_svg_chart(series, "Figure 1")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_series_elements(self, series):
        svg = render_svg_chart(series, "Figure 1")
        assert svg.count("<polyline") == 2
        assert "SRDA" in svg and "LDA" in svg
        assert "Figure 1" in svg

    def test_axis_labels(self, series):
        svg = render_svg_chart(
            series, "t", xlabel="train size", ylabel="error (%)"
        )
        assert "train size" in svg
        assert "error (%)" in svg

    def test_unequal_series_lengths(self):
        # the memory-limited curves just stop, like the paper's Fig 4
        svg = render_svg_chart(
            {
                "SRDA": (["5%", "10%", "20%"], [27.3, 21.3, 16.0]),
                "LDA": (["5%", "10%"], [28.0, 22.7]),
            },
            "Figure 4",
        )
        ET.fromstring(svg)
        assert svg.count("<polyline") == 2

    def test_single_point_series_renders_marker_only(self):
        svg = render_svg_chart({"only": (["1"], [5.0])}, "dot")
        ET.fromstring(svg)
        assert "<polyline" not in svg
        assert "<circle" in svg

    def test_writes_file(self, series, tmp_path):
        path = tmp_path / "figure1"
        render_svg_chart(series, "Figure 1", path=path)
        written = (tmp_path / "figure1.svg").read_text()
        ET.fromstring(written)

    def test_escapes_labels(self):
        svg = render_svg_chart(
            {"a<b": (["x"], [1.0])}, 'title & "quotes"'
        )
        ET.fromstring(svg)  # would raise on unescaped < or &

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            render_svg_chart({}, "empty")
        with pytest.raises(ValueError):
            render_svg_chart({"a": ([], [])}, "empty")

    def test_constant_series(self):
        svg = render_svg_chart({"flat": (["1", "2"], [3.0, 3.0])}, "flat")
        ET.fromstring(svg)
