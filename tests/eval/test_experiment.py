"""Unit tests for the experiment runner."""

import numpy as np
import pytest

from repro.baselines.lda import LDA
from repro.core.srda import SRDA
from repro.datasets import Dataset, make_digits, make_text
from repro.eval.experiment import (
    PAPER_MEMORY_BUDGET_BYTES,
    CellResult,
    run_experiment,
    size_label,
)


@pytest.fixture
def tiny_dataset(rng):
    X = np.vstack(
        [rng.standard_normal((30, 8)) + 3.0 * k for k in range(3)]
    )
    y = np.repeat(np.arange(3), 30)
    return Dataset(
        "tiny", X, y,
        metadata={"split_protocol": "per_class_within", "train_sizes": [5, 10]},
    )


ALGOS = {"SRDA": lambda: SRDA(alpha=1.0), "LDA": lambda: LDA()}


class TestRunExperiment:
    def test_result_structure(self, tiny_dataset):
        result = run_experiment(tiny_dataset, ALGOS, n_splits=3, seed=0)
        assert result.algorithm_names == ["SRDA", "LDA"]
        assert result.size_labels == ["5", "10"]
        assert result.n_splits == 3
        for key, cell in result.cells.items():
            assert len(cell.errors) == 3
            assert len(cell.fit_seconds) == 3
            assert not cell.failed

    def test_error_matrix_shape_and_range(self, tiny_dataset):
        result = run_experiment(tiny_dataset, ALGOS, n_splits=2, seed=0)
        errors = result.error_matrix()
        assert errors.shape == (2, 2)
        assert np.all((errors >= 0) & (errors <= 1))
        times = result.time_matrix()
        assert np.all(times > 0)

    def test_explicit_sizes_override(self, tiny_dataset):
        result = run_experiment(
            tiny_dataset, ALGOS, train_sizes=[4], n_splits=2, seed=0
        )
        assert result.size_labels == ["4"]

    def test_deterministic_given_seed(self, tiny_dataset):
        a = run_experiment(tiny_dataset, ALGOS, n_splits=2, seed=3)
        b = run_experiment(tiny_dataset, ALGOS, n_splits=2, seed=3)
        assert a.cell("SRDA", "5").errors == b.cell("SRDA", "5").errors

    def test_missing_sizes_rejected(self, rng):
        bare = Dataset(
            "bare", rng.standard_normal((10, 3)), np.arange(10) % 2,
            metadata={"split_protocol": "per_class_within"},
        )
        with pytest.raises(ValueError, match="train sizes"):
            run_experiment(bare, ALGOS, n_splits=1)

    def test_unknown_protocol_rejected(self, rng):
        bad = Dataset(
            "bad", rng.standard_normal((10, 3)), np.arange(10) % 2,
            metadata={"split_protocol": "bootstrap", "train_sizes": [2]},
        )
        with pytest.raises(ValueError, match="protocol"):
            run_experiment(bad, ALGOS, n_splits=1)

    def test_pool_protocol(self):
        d = make_digits(n_train=80, n_test=40, side=14, seed=0)
        result = run_experiment(
            d, {"SRDA": lambda: SRDA(alpha=1.0)}, train_sizes=[4],
            n_splits=2, seed=0,
        )
        cell = result.cell("SRDA", "4")
        assert len(cell.errors) == 2

    def test_ratio_protocol_labels(self):
        d = make_text(n_docs=120, vocab_size=600, n_classes=4, seed=0)
        result = run_experiment(
            d, {"SRDA": lambda: SRDA(alpha=1.0, solver="lsqr", max_iter=10)},
            train_sizes=[0.3], n_splits=2, seed=0,
        )
        assert result.size_labels == ["30%"]


class TestMemoryBudget:
    def test_over_budget_marked_failed(self, tiny_dataset):
        result = run_experiment(
            tiny_dataset,
            {"LDA": lambda: LDA(), "SRDA (LSQR)": lambda: SRDA(solver="lsqr")},
            n_splits=2,
            seed=0,
            memory_budget_bytes=100.0,  # absurdly small: everything dense fails
        )
        lda_cell = result.cell("LDA", "5")
        assert lda_cell.failed
        assert "exceeds budget" in lda_cell.failure
        assert lda_cell.errors == []

    def test_generous_budget_allows_all(self, tiny_dataset):
        result = run_experiment(
            tiny_dataset, ALGOS, n_splits=2, seed=0,
            memory_budget_bytes=PAPER_MEMORY_BUDGET_BYTES,
        )
        assert not any(cell.failed for cell in result.cells.values())

    def test_failed_cells_are_nan_in_matrices(self, tiny_dataset):
        result = run_experiment(
            tiny_dataset, {"LDA": lambda: LDA()}, n_splits=1, seed=0,
            memory_budget_bytes=100.0,
        )
        assert np.all(np.isnan(result.error_matrix()))


class _ExplodingModel:
    """Always raises during fit — failure-injection helper."""

    def fit(self, X, y):
        raise RuntimeError("synthetic failure")

    def predict(self, X):  # pragma: no cover - never reached
        raise AssertionError


class TestErrorHandling:
    def test_exception_propagates_by_default(self, tiny_dataset):
        with pytest.raises(RuntimeError, match="synthetic failure"):
            run_experiment(
                tiny_dataset, {"boom": lambda: _ExplodingModel()},
                n_splits=1, seed=0,
            )

    def test_continue_on_error_records_failure(self, tiny_dataset):
        result = run_experiment(
            tiny_dataset,
            {"boom": lambda: _ExplodingModel(), "SRDA": lambda: SRDA()},
            n_splits=2,
            seed=0,
            continue_on_error=True,
        )
        boom = result.cell("boom", "5")
        assert boom.failed
        assert "synthetic failure" in boom.failure
        # the healthy algorithm still ran every split
        assert len(result.cell("SRDA", "5").errors) == 2

    def test_failed_algorithm_renders_as_dash(self, tiny_dataset):
        from repro.eval.tables import FAILED_CELL, format_error_table

        result = run_experiment(
            tiny_dataset, {"boom": lambda: _ExplodingModel()},
            n_splits=1, seed=0, continue_on_error=True,
        )
        assert FAILED_CELL in format_error_table(result)


class TestHelpers:
    def test_size_label(self):
        assert size_label(30) == "30"
        assert size_label(0.05) == "5%"
        assert size_label(0.5) == "50%"

    def test_cell_result_statistics(self):
        cell = CellResult(errors=[0.1, 0.2, 0.3], fit_seconds=[1.0, 2.0, 3.0])
        assert cell.mean_error == pytest.approx(0.2)
        assert cell.mean_time == pytest.approx(2.0)
        assert not cell.failed

    def test_empty_cell_is_nan(self):
        cell = CellResult()
        assert np.isnan(cell.mean_error)
        assert np.isnan(cell.mean_time)
