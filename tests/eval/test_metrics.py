"""Unit tests for metrics and aggregation."""

import numpy as np
import pytest

from repro.eval.metrics import (
    classification_report,
    confusion_matrix,
    error_rate,
    macro_f1,
    mean_std,
    precision_recall_f1,
)


class TestErrorRate:
    def test_basic(self):
        assert error_rate([0, 1, 1, 0], [0, 1, 0, 0]) == pytest.approx(0.25)

    def test_perfect(self):
        assert error_rate([1, 2], [1, 2]) == 0.0

    def test_all_wrong(self):
        assert error_rate([0, 0], [1, 1]) == 1.0

    def test_string_labels(self):
        assert error_rate(["a", "b"], ["a", "a"]) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_rate([0, 1], [0, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            error_rate([], [])


class TestMeanStd:
    def test_basic(self):
        mean, std = mean_std(np.array([1.0, 2.0, 3.0]))
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(np.sqrt(2.0 / 3.0))

    def test_ignores_nan(self):
        mean, _ = mean_std(np.array([1.0, np.nan, 3.0]))
        assert mean == pytest.approx(2.0)

    def test_all_nan(self):
        mean, std = mean_std(np.array([np.nan, np.nan]))
        assert np.isnan(mean) and np.isnan(std)

    def test_single_value(self):
        mean, std = mean_std(np.array([5.0]))
        assert mean == 5.0 and std == 0.0


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        y = np.array([0, 1, 2, 1])
        cm = confusion_matrix(y, y, 3)
        assert np.array_equal(cm, np.diag([1, 2, 1]))

    def test_off_diagonal(self):
        cm = confusion_matrix([0, 0, 1], [1, 0, 1], 2)
        assert cm[0, 1] == 1 and cm[0, 0] == 1 and cm[1, 1] == 1

    def test_total_preserved(self, rng):
        y_true = rng.integers(0, 4, 50)
        y_pred = rng.integers(0, 4, 50)
        assert confusion_matrix(y_true, y_pred, 4).sum() == 50


class TestPrecisionRecallF1:
    def test_perfect_prediction(self):
        y = np.array([0, 1, 2, 1, 0])
        p, r, f = precision_recall_f1(y, y, 3)
        assert np.allclose(p, 1.0)
        assert np.allclose(r, 1.0)
        assert np.allclose(f, 1.0)

    def test_known_values(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        p, r, f = precision_recall_f1(y_true, y_pred, 2)
        assert p[0] == pytest.approx(1.0)      # 1 of 1 predicted-0 correct
        assert r[0] == pytest.approx(0.5)      # 1 of 2 actual-0 found
        assert p[1] == pytest.approx(2.0 / 3)
        assert r[1] == pytest.approx(1.0)
        assert f[0] == pytest.approx(2 * 1.0 * 0.5 / 1.5)

    def test_never_predicted_class_zero_precision(self):
        y_true = np.array([0, 1, 2])
        y_pred = np.array([0, 1, 1])
        p, _, f = precision_recall_f1(y_true, y_pred, 3)
        assert p[2] == 0.0
        assert f[2] == 0.0

    def test_macro_f1_is_mean(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        _, _, f = precision_recall_f1(y_true, y_pred, 2)
        assert macro_f1(y_true, y_pred, 2) == pytest.approx(f.mean())

    def test_report_renders(self):
        y_true = np.array([0, 0, 1, 1, 2])
        y_pred = np.array([0, 1, 1, 1, 2])
        report = classification_report(
            y_true, y_pred, 3, class_names=["ham", "spam", "meta"]
        )
        assert "ham" in report
        assert "macro" in report
        assert "support" in report

    def test_report_default_names(self):
        y = np.array([0, 1])
        report = classification_report(y, y, 2)
        assert report.count("1.000") >= 4
