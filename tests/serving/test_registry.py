"""ModelRegistry: the register / promote / rollback lifecycle."""

import threading

import numpy as np
import pytest

from repro import SRDA, SolverConfig, clone
from repro.serving import ModelRegistry
from repro.serving.registry import ModelNotFoundError

pytestmark = pytest.mark.serving


@pytest.fixture
def fitted_model(small_classification):
    X, y = small_classification
    return SRDA(alpha=1.0, config=SolverConfig(solver="normal")).fit(X, y)


class TestRegister:
    def test_versions_increment_per_name(self, fitted_model):
        registry = ModelRegistry()
        assert registry.register("srda", fitted_model) == 1
        assert registry.register("srda", clone(fitted_model).fit(
            *_refit_data()
        )) == 2
        assert registry.register("other", fitted_model) == 1
        assert registry.versions("srda") == [1, 2]

    def test_first_version_auto_promotes(self, fitted_model):
        registry = ModelRegistry()
        registry.register("srda", fitted_model)
        assert registry.active_version("srda") == 1
        assert registry.active("srda") is fitted_model

    def test_later_versions_stay_staged(self, fitted_model):
        registry = ModelRegistry()
        registry.register("srda", fitted_model)
        second = clone(fitted_model).fit(*_refit_data())
        registry.register("srda", second)
        assert registry.active_version("srda") == 1
        assert registry.active("srda") is fitted_model

    def test_rejects_unfitted_estimator(self):
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="unfitted"):
            registry.register("srda", SRDA())

    def test_rejects_surface_free_object(self):
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="nothing to serve"):
            registry.register("thing", object())

    def test_accepts_duck_typed_model(self):
        class Duck:
            def predict(self, X):
                return np.zeros(len(X))

        registry = ModelRegistry()
        assert registry.register("duck", Duck()) == 1

    def test_rejects_empty_name(self, fitted_model):
        with pytest.raises(ValueError, match="non-empty"):
            ModelRegistry().register("", fitted_model)


class TestPromoteRollback:
    def _two_versions(self, fitted_model):
        registry = ModelRegistry()
        registry.register("srda", fitted_model)
        second = clone(fitted_model).fit(*_refit_data())
        registry.register("srda", second)
        return registry, fitted_model, second

    def test_promote_moves_traffic(self, fitted_model):
        registry, _, second = self._two_versions(fitted_model)
        registry.promote("srda", 2)
        assert registry.active("srda") is second

    def test_rollback_undoes_last_promotion(self, fitted_model):
        registry, first, _ = self._two_versions(fitted_model)
        registry.promote("srda", 2)
        assert registry.rollback("srda") == 1
        assert registry.active("srda") is first

    def test_rollback_without_history_refuses(self, fitted_model):
        registry = ModelRegistry()
        registry.register("srda", fitted_model)
        with pytest.raises(ValueError, match="no prior promotion"):
            registry.rollback("srda")

    def test_promote_unknown_version(self, fitted_model):
        registry = ModelRegistry()
        registry.register("srda", fitted_model)
        with pytest.raises(ModelNotFoundError):
            registry.promote("srda", 99)

    def test_unknown_name(self):
        registry = ModelRegistry()
        with pytest.raises(ModelNotFoundError):
            registry.active("missing")

    def test_repeated_promote_is_idempotent_for_rollback(
        self, fitted_model
    ):
        registry, first, second = self._two_versions(fitted_model)
        registry.promote("srda", 2)
        registry.promote("srda", 2)  # no-op, not a new history entry
        assert registry.rollback("srda") == 1
        assert registry.active("srda") is first


class TestIntrospection:
    def test_describe_is_json_safe(self, fitted_model):
        import json

        registry = ModelRegistry()
        registry.register("srda", fitted_model, note="seed")
        snapshot = registry.describe()
        json.dumps(snapshot)  # must not raise
        assert snapshot["srda"]["active_version"] == 1
        assert snapshot["srda"]["versions"][0]["estimator"] == "SRDA"
        assert snapshot["srda"]["versions"][0]["note"] == "seed"

    def test_names_sorted(self, fitted_model):
        registry = ModelRegistry()
        registry.register("b", fitted_model)
        registry.register("a", fitted_model)
        assert registry.names() == ["a", "b"]

    def test_get_specific_version(self, fitted_model):
        registry = ModelRegistry()
        registry.register("srda", fitted_model)
        record = registry.get("srda", 1)
        assert record.model is fitted_model
        with pytest.raises(ModelNotFoundError):
            registry.get("srda", 2)


class TestConcurrency:
    def test_concurrent_register_assigns_unique_versions(
        self, fitted_model
    ):
        registry = ModelRegistry()
        versions = []
        lock = threading.Lock()

        def worker():
            v = registry.register("srda", fitted_model)
            with lock:
                versions.append(v)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(versions) == list(range(1, 17))


def _refit_data():
    rng = np.random.default_rng(7)
    X = rng.standard_normal((30, 10))
    y = np.arange(30) % 3
    return X, y
