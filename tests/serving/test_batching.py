"""BatchingPredictor: coalescing, correctness, SLO metrics, lifecycle."""

import threading

import numpy as np
import pytest

from repro import SRDA, SolverConfig
from repro.serving import BatchingPredictor, ModelRegistry

pytestmark = pytest.mark.serving


@pytest.fixture
def model(small_classification):
    X, y = small_classification
    return SRDA(alpha=1.0, config=SolverConfig(solver="normal")).fit(X, y)


@pytest.fixture
def data(small_classification):
    return small_classification


class TestCorrectness:
    def test_single_row_matches_block_predict(self, model, data):
        X, _ = data
        with BatchingPredictor(model, max_wait=0.0) as predictor:
            served = [predictor.predict(row) for row in X[:10]]
        expected = model.predict(X[:10].astype(np.float32))
        np.testing.assert_array_equal(np.asarray(served), expected)

    def test_decision_function_and_transform_methods(self, model, data):
        X, _ = data
        row = X[0]
        with BatchingPredictor(model, method="decision_function") as p:
            scores = p.predict(row)
            embedding = p.predict(row, method="transform")
        np.testing.assert_allclose(
            scores,
            model.decision_function(row[None, :].astype(np.float32))[0],
            rtol=1e-5,
        )
        np.testing.assert_allclose(
            embedding,
            model.transform(row[None, :].astype(np.float32))[0],
            rtol=1e-5,
        )

    def test_float32_end_to_end(self, model, data):
        X, _ = data
        with BatchingPredictor(model, method="transform") as predictor:
            embedding = predictor.predict(X[0])
        assert np.asarray(embedding).dtype == np.float32

    def test_concurrent_clients_coalesce(self, model, data):
        X, _ = data
        n_clients, per_client = 8, 10
        results = [None] * n_clients
        with BatchingPredictor(
            model, max_batch=64, max_wait=0.02
        ) as predictor:
            barrier = threading.Barrier(n_clients)

            def client(i):
                barrier.wait()
                results[i] = [
                    predictor.predict(row)
                    for row in X[: per_client]
                ]

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = predictor.stats()
        expected = model.predict(X[:per_client].astype(np.float32))
        for got in results:
            np.testing.assert_array_equal(np.asarray(got), expected)
        assert stats.requests == n_clients * per_client
        # Coalescing must actually happen: strictly fewer block calls
        # than requests.
        assert stats.batches < stats.requests
        assert stats.mean_batch_size > 1.0

    def test_registry_supplier_sees_promotions(self, data):
        X, y = data
        first = SRDA(
            alpha=1.0, config=SolverConfig(solver="normal")
        ).fit(X, y)
        # A deliberately different second model: collapse to one class.
        class Constant:
            def is_fitted(self):
                return True

            def predict(self, X):
                return np.full(X.shape[0], 99)

        registry = ModelRegistry()
        registry.register("m", first)
        registry.register("m", Constant())
        with BatchingPredictor(
            lambda: registry.active("m"), max_wait=0.0
        ) as predictor:
            before = predictor.predict(X[0])
            registry.promote("m", 2)
            after = predictor.predict(X[0])
        assert before == first.predict(X[:1].astype(np.float32))[0]
        assert after == 99


class TestMetrics:
    def test_latency_histogram_and_throughput(self, model, data):
        X, _ = data
        with BatchingPredictor(model, max_wait=0.0) as predictor:
            for row in X[:20]:
                predictor.predict(row)
            stats = predictor.stats()
            snapshot = predictor.metrics.snapshot()
        assert stats.requests == 20
        assert stats.p50_latency_s > 0
        assert stats.p99_latency_s >= stats.p95_latency_s >= 0
        assert stats.throughput_rows_per_s > 0
        histograms = snapshot["histograms"]
        assert "serving.request_latency_s" in histograms
        assert histograms["serving.request_latency_s"]["count"] == 20
        assert histograms["serving.request_latency_s"]["p99"] > 0

    def test_shared_metrics_registry(self, model, data):
        from repro.observability import MetricsRegistry

        X, _ = data
        metrics = MetricsRegistry()
        with BatchingPredictor(
            model, max_wait=0.0, metrics=metrics
        ) as predictor:
            predictor.predict(X[0])
        assert metrics.counter("serving.requests").value == 1


class TestLifecycleAndErrors:
    def test_submit_after_close_raises(self, model, data):
        X, _ = data
        predictor = BatchingPredictor(model)
        predictor.close()
        with pytest.raises(RuntimeError, match="closed"):
            predictor.submit(X[0])

    def test_close_is_idempotent(self, model):
        predictor = BatchingPredictor(model)
        predictor.close()
        predictor.close()

    def test_model_error_propagates_to_caller(self, model, data):
        X, _ = data
        with BatchingPredictor(model, max_wait=0.0) as predictor:
            with pytest.raises(ValueError, match="features"):
                predictor.predict(np.ones(3, dtype=np.float32))
            # The worker must survive the error.
            label = predictor.predict(X[0])
        assert label in model.classes_
        assert predictor.metrics.counter("serving.errors").value >= 1

    def test_rejects_bad_parameters(self, model):
        with pytest.raises(ValueError, match="max_batch"):
            BatchingPredictor(model, max_batch=0)
        with pytest.raises(ValueError, match="max_wait"):
            BatchingPredictor(model, max_wait=-1)
        with pytest.raises(ValueError, match="method"):
            BatchingPredictor(model, method="classify")

    def test_group_failure_gives_each_caller_its_own_error(
        self, model, data
    ):
        """Tickets in one failed block call must not share an exception
        object — each caller re-raises from its own thread, and raising
        mutates ``__traceback__``."""
        bad = np.ones(3, dtype=np.float32)  # wrong feature count
        with BatchingPredictor(
            model, max_batch=8, max_wait=0.05
        ) as predictor:
            first = predictor.submit(bad)
            second = predictor.submit(bad)
            assert first.done.wait(10) and second.done.wait(10)
        assert isinstance(first.error, ValueError)
        assert isinstance(second.error, ValueError)
        assert first.error is not second.error

    def test_rejects_2d_submission(self, model, data):
        X, _ = data
        with BatchingPredictor(model) as predictor:
            with pytest.raises(ValueError, match="1-D row"):
                predictor.submit(X[:2])
