"""HTTP serving front end: endpoints, lifecycle, SLO surfacing."""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro import SRDA, SolverConfig
from repro.serving import ModelRegistry
from repro.serving.server import ServingApp, make_server

pytestmark = pytest.mark.serving


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


@pytest.fixture
def serving(small_classification):
    """A live server on an ephemeral port; yields (base_url, X, y, app)."""
    X, y = small_classification
    model = SRDA(
        alpha=1.0, config=SolverConfig(solver="lsqr"), tol=1e-8
    ).fit(X, y)
    registry = ModelRegistry()
    registry.register("srda", model)
    app = ServingApp(registry, "srda", max_wait=0.001)
    server = make_server(app)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}", X, y, app
    finally:
        server.shutdown()
        server.server_close()
        app.close()


class TestEndpoints:
    def test_healthz(self, serving):
        base, _, _, _ = serving
        status, payload = _get(base, "/healthz")
        assert status == 200 and payload["status"] == "ok"

    def test_predict_rows(self, serving):
        base, X, y, app = serving
        status, payload = _post(base, "/predict", {"rows": X[:5].tolist()})
        assert status == 200
        expected = app.registry.active("srda").predict(
            X[:5].astype(np.float32)
        )
        assert payload["results"] == expected.tolist()
        assert payload["version"] == 1

    def test_predict_single_row_auto_wraps(self, serving):
        base, X, _, _ = serving
        status, payload = _post(base, "/predict", {"rows": X[0].tolist()})
        assert status == 200
        assert len(payload["results"]) == 1

    def test_predict_transform_method(self, serving):
        base, X, _, _ = serving
        status, payload = _post(
            base,
            "/predict",
            {"rows": X[:2].tolist(), "method": "transform"},
        )
        assert status == 200
        assert len(payload["results"]) == 2
        assert isinstance(payload["results"][0], list)

    def test_predict_validation_errors(self, serving):
        base, _, _, _ = serving
        status, payload = _post(base, "/predict", {})
        assert status == 400 and "rows" in payload["error"]
        status, payload = _post(
            base, "/predict", {"rows": [[1.0]], "method": "classify"}
        )
        assert status == 400

    def test_ragged_rows_return_http_400(self, serving):
        """Malformed arrays must be a 400, not a dropped connection."""
        base, _, _, _ = serving
        ragged = [[1.0, 2.0], [3.0]]
        status, payload = _post(base, "/predict", {"rows": ragged})
        assert status == 400 and "error" in payload
        status, payload = _post(
            base, "/partial_fit", {"rows": ragged, "labels": [0, 1]}
        )
        assert status == 400 and "error" in payload
        status, payload = _post(
            base, "/predict", {"rows": [["not", "numbers"]]}
        )
        assert status == 400 and "error" in payload

    def test_unknown_path_404(self, serving):
        base, _, _, _ = serving
        assert _get(base, "/nope")[0] == 404
        assert _post(base, "/nope", {})[0] == 404

    def test_models_listing(self, serving):
        base, _, _, _ = serving
        status, payload = _get(base, "/models")
        assert status == 200
        assert payload["srda"]["active_version"] == 1

    def test_metrics_expose_slo_percentiles(self, serving):
        base, X, _, _ = serving
        _post(base, "/predict", {"rows": X[:8].tolist()})
        status, payload = _get(base, "/metrics")
        assert status == 200
        assert payload["slo"]["requests"] >= 8
        assert payload["slo"]["p99_latency_s"] > 0
        histograms = payload["instruments"]["histograms"]
        assert histograms["serving.request_latency_s"]["p99"] > 0


class TestLifecycle:
    def test_partial_fit_registers_new_version(self, serving):
        base, X, y, _ = serving
        status, payload = _post(
            base,
            "/partial_fit",
            {"rows": X[:6].tolist(), "labels": y[:6].tolist()},
        )
        assert status == 200
        assert payload["version"] == 2
        assert payload["incremental"]["batches"] >= 1
        status, payload = _get(base, "/models")
        assert payload["srda"]["active_version"] == 2

    def test_promote_and_rollback(self, serving):
        base, X, y, _ = serving
        _post(
            base,
            "/partial_fit",
            {"rows": X[:6].tolist(), "labels": y[:6].tolist()},
        )
        status, payload = _post(base, "/rollback", {})
        assert status == 200 and payload["active_version"] == 1
        status, payload = _post(base, "/promote", {"version": 2})
        assert status == 200 and payload["active_version"] == 2

    def test_rollback_without_history(self, serving):
        base, _, _, _ = serving
        status, payload = _post(base, "/rollback", {})
        assert status == 409

    def test_partial_fit_never_mutates_served_model(self, serving):
        """The update runs on a deep copy; version 1 keeps its exact
        pre-update state, so rollback is a real undo."""
        base, X, y, app = serving
        original = app.registry.get("srda", 1).model
        components_before = original.components_.copy()
        expected = original.predict(X[:5].astype(np.float32)).tolist()

        status, _ = _post(
            base,
            "/partial_fit",
            {"rows": X[:6].tolist(), "labels": y[:6].tolist()},
        )
        assert status == 200
        # Version 2 is a different object; version 1 is bit-identical.
        assert app.registry.get("srda", 2).model is not original
        assert app.registry.get("srda", 1).model is original
        np.testing.assert_array_equal(
            original.components_, components_before
        )
        # Rollback serves the genuine pre-update model.
        _post(base, "/rollback", {})
        status, payload = _post(base, "/predict", {"rows": X[:5].tolist()})
        assert status == 200
        assert payload["version"] == 1
        assert payload["results"] == expected

    def test_promote_missing_version(self, serving):
        base, _, _, _ = serving
        assert _post(base, "/promote", {"version": 41})[0] == 404
        assert _post(base, "/promote", {})[0] == 400

    def test_shutdown_endpoint_stops_server(self, small_classification):
        X, y = small_classification
        model = SRDA(
            alpha=1.0, config=SolverConfig(solver="normal")
        ).fit(X, y)
        registry = ModelRegistry()
        registry.register("srda", model)
        app = ServingApp(registry, "srda")
        server = make_server(app)
        host, port = server.server_address
        thread = threading.Thread(target=server.serve_forever)
        thread.start()
        base = f"http://{host}:{port}"
        try:
            status, payload = _post(base, "/shutdown", {})
            assert status == 200
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            server.server_close()
            app.close()
