"""Unit tests for regularized LDA."""

import numpy as np
import pytest

from repro.baselines.lda import LDA
from repro.baselines.rlda import RLDA
from repro.linalg.dense import generalized_eigh


class TestRLDA:
    def test_embedding_dimension(self, small_classification):
        X, y = small_classification
        model = RLDA(alpha=1.0).fit(X, y)
        assert model.components_.shape == (X.shape[1], 2)

    def test_separable_data(self, small_classification):
        X, y = small_classification
        assert RLDA(alpha=1.0).fit(X, y).score(X, y) == 1.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            RLDA(alpha=-0.5)

    def test_reduction_is_exact(self, small_classification):
        """The SVD reduction must agree with solving the full-space
        generalized problem directly (small n oracle)."""
        from repro.core.base import encode_labels
        from repro.core.graph import between_class_scatter, within_class_scatter

        X, y = small_classification
        _, y_idx = encode_labels(y)
        alpha = 0.7
        model = RLDA(alpha=alpha).fit(X, y)

        Sb = between_class_scatter(X, y_idx, 3)
        Sw = within_class_scatter(X, y_idx, 3)
        eigvals, eigvecs = generalized_eigh(Sb, Sw, regularization=alpha)
        assert np.allclose(model.eigenvalues_, eigvals[:2], atol=1e-6)
        # same subspace
        Q1, _ = np.linalg.qr(model.components_)
        Q2, _ = np.linalg.qr(eigvecs[:, :2])
        assert np.abs(Q1 @ Q1.T - Q2 @ Q2.T).max() < 1e-5

    def test_directions_solve_regularized_eigenproblem(
        self, highdim_classification
    ):
        from repro.core.base import encode_labels
        from repro.core.graph import between_class_scatter, within_class_scatter

        X, y = highdim_classification
        _, y_idx = encode_labels(y)
        alpha = 1.0
        model = RLDA(alpha=alpha).fit(X, y)
        Sb = between_class_scatter(X, y_idx, 4)
        Sw = within_class_scatter(X, y_idx, 4)
        n = X.shape[1]
        for j in range(model.components_.shape[1]):
            a = model.components_[:, j]
            lam = model.eigenvalues_[j]
            residual = np.linalg.norm(
                Sb @ a - lam * ((Sw + alpha * np.eye(n)) @ a)
            )
            assert residual < 1e-6 * max(1.0, np.linalg.norm(a))

    def test_undersampled_case_stable(self, highdim_classification):
        X, y = highdim_classification
        model = RLDA(alpha=1.0).fit(X, y)
        assert np.all(np.isfinite(model.components_))
        assert model.score(X, y) == 1.0

    def test_generalizes_better_than_lda_when_undersampled(self, rng):
        # the paper's core empirical finding, in miniature
        n, c, per_class = 100, 5, 4
        centers = 1.2 * rng.standard_normal((c, n))

        def sample(count):
            X = np.vstack(
                [centers[k] + 2.0 * rng.standard_normal((count, n)) for k in range(c)]
            )
            return X, np.repeat(np.arange(c), count)

        wins = 0
        for _ in range(5):
            X_tr, y_tr = sample(per_class)
            X_te, y_te = sample(40)
            lda_score = LDA().fit(X_tr, y_tr).score(X_te, y_te)
            rlda_score = RLDA(alpha=1.0).fit(X_tr, y_tr).score(X_te, y_te)
            wins += rlda_score >= lda_score
        assert wins >= 4

    def test_alpha_zero_close_to_lda_subspace(self, small_classification):
        X, y = small_classification
        lda_model = LDA().fit(X, y)
        rlda_model = RLDA(alpha=1e-10).fit(X, y)
        Q1, _ = np.linalg.qr(lda_model.components_)
        Q2, _ = np.linalg.qr(rlda_model.components_)
        assert np.abs(Q1 @ Q1.T - Q2 @ Q2.T).max() < 1e-4
