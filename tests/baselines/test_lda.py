"""Unit tests for the SVD-route LDA baseline."""

import numpy as np
import pytest

from repro.baselines.lda import LDA, ScatterLDA
from repro.core.base import NotFittedError
from repro.linalg.sparse import CSRMatrix


class TestLDA:
    def test_embedding_dimension(self, small_classification):
        X, y = small_classification
        model = LDA().fit(X, y)
        assert model.components_.shape == (X.shape[1], 2)

    def test_n_components_cap(self, small_classification):
        X, y = small_classification
        model = LDA(n_components=1).fit(X, y)
        assert model.components_.shape[1] == 1

    def test_separable_data(self, small_classification):
        X, y = small_classification
        assert LDA().fit(X, y).score(X, y) == 1.0

    def test_eigenvalues_in_unit_interval(self, small_classification):
        # λ = trace ratio of S_b against S_t, bounded by S_b ⪯ S_t
        X, y = small_classification
        model = LDA().fit(X, y)
        assert np.all(model.eigenvalues_ >= -1e-10)
        assert np.all(model.eigenvalues_ <= 1.0 + 1e-10)

    def test_eigenvalues_descending(self, small_classification):
        X, y = small_classification
        model = LDA().fit(X, y)
        assert np.all(np.diff(model.eigenvalues_) <= 1e-12)

    def test_directions_solve_generalized_eigenproblem(self, small_classification):
        from repro.core.graph import between_class_scatter, total_scatter
        from repro.core.base import encode_labels

        X, y = small_classification
        _, y_idx = encode_labels(y)
        model = LDA().fit(X, y)
        Sb = between_class_scatter(X, y_idx, 3)
        St = total_scatter(X)
        for j in range(model.components_.shape[1]):
            a = model.components_[:, j]
            lam = model.eigenvalues_[j]
            residual = np.linalg.norm(Sb @ a - lam * (St @ a))
            assert residual < 1e-6 * np.linalg.norm(St @ a)

    def test_undersampled_case(self, highdim_classification):
        # n > m: the singularity case the SVD route exists for
        X, y = highdim_classification
        model = LDA().fit(X, y)
        assert model.score(X, y) == 1.0

    def test_sparse_input_densified(self, small_classification):
        X, y = small_classification
        sparse_model = LDA().fit(CSRMatrix.from_dense(X), y)
        dense_model = LDA().fit(X, y)
        assert np.allclose(
            np.abs(sparse_model.components_), np.abs(dense_model.components_),
            atol=1e-8,
        )

    def test_constant_data_rejected(self):
        X = np.ones((6, 4))
        y = np.array([0, 1] * 3)
        with pytest.raises(ValueError, match="zero variance"):
            LDA().fit(X, y)

    def test_unfitted(self, rng):
        with pytest.raises(NotFittedError):
            LDA().transform(rng.standard_normal((2, 3)))

    def test_transform_centers_with_training_mean(self, small_classification):
        X, y = small_classification
        model = LDA().fit(X, y)
        Z = model.transform(X)
        expected = (X - X.mean(axis=0)) @ model.components_
        assert np.allclose(Z, expected, atol=1e-10)


class TestScatterLDAAgreement:
    def test_matches_svd_route_subspace(self, small_classification):
        X, y = small_classification
        svd_route = LDA().fit(X, y)
        scatter_route = ScatterLDA(alpha=1e-10).fit(X, y)
        # same projection subspace: orthonormalized spans agree
        Q1, _ = np.linalg.qr(svd_route.components_)
        Q2, _ = np.linalg.qr(scatter_route.components_)
        assert np.abs(Q1 @ Q1.T - Q2 @ Q2.T).max() < 1e-5

    def test_matching_eigenvalues(self, small_classification):
        X, y = small_classification
        svd_route = LDA().fit(X, y)
        scatter_route = ScatterLDA(alpha=1e-10).fit(X, y)
        assert np.allclose(
            svd_route.eigenvalues_, scatter_route.eigenvalues_, atol=1e-5
        )

    def test_same_predictions(self, small_classification):
        X, y = small_classification
        a = LDA().fit(X, y)
        b = ScatterLDA(alpha=1e-10).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))
