"""Unit tests for the one-vs-rest ridge classifier."""

import numpy as np
import pytest

from repro.baselines.ridge import RidgeClassifier
from repro.core.base import NotFittedError
from repro.linalg.sparse import CSRMatrix


class TestRidgeClassifier:
    def test_separable_data(self, small_classification):
        X, y = small_classification
        assert RidgeClassifier(alpha=1.0).fit(X, y).score(X, y) == 1.0

    def test_decision_function_shape(self, small_classification):
        X, y = small_classification
        model = RidgeClassifier(alpha=1.0).fit(X, y)
        assert model.decision_function(X).shape == (X.shape[0], 3)

    def test_coefficients_match_per_class_ridge(self, small_classification):
        X, y = small_classification
        alpha = 2.0
        model = RidgeClassifier(alpha=alpha, solver="normal").fit(X, y)
        m, n = X.shape
        X_aug = np.hstack([X, np.ones((m, 1))])
        for k, label in enumerate(model.classes_):
            target = np.where(y == label, 1.0, -1.0)
            expected = np.linalg.solve(
                X_aug.T @ X_aug + alpha * np.eye(n + 1), X_aug.T @ target
            )
            assert np.allclose(model.coef_[:, k], expected[:-1], atol=1e-8)
            assert model.intercept_[k] == pytest.approx(expected[-1], abs=1e-8)

    def test_normal_vs_lsqr(self, small_classification):
        X, y = small_classification
        a = RidgeClassifier(alpha=1.0, solver="normal").fit(X, y)
        b = RidgeClassifier(
            alpha=1.0, solver="lsqr", max_iter=500, tol=1e-14
        ).fit(X, y)
        assert np.allclose(a.coef_, b.coef_, atol=1e-6)

    def test_dual_path_when_wide(self, rng):
        m, n = 10, 40
        X = rng.standard_normal((m, n))
        y = np.arange(m) % 2
        model = RidgeClassifier(alpha=0.5, solver="normal").fit(X, y)
        X_aug = np.hstack([X, np.ones((m, 1))])
        target = np.where(y == model.classes_[0], 1.0, -1.0)
        expected = np.linalg.solve(
            X_aug.T @ X_aug + 0.5 * np.eye(n + 1), X_aug.T @ target
        )
        assert np.allclose(model.coef_[:, 0], expected[:-1], atol=1e-8)

    def test_alpha_zero_lstsq_path(self, small_classification):
        X, y = small_classification
        model = RidgeClassifier(alpha=0.0, solver="normal").fit(X, y)
        assert model.score(X, y) == 1.0

    def test_sparse_input(self, sparse_classification):
        S, dense, y = sparse_classification
        sparse_model = RidgeClassifier(
            alpha=1.0, solver="lsqr", max_iter=400, tol=1e-13
        ).fit(S, y)
        dense_model = RidgeClassifier(alpha=1.0, solver="normal").fit(dense, y)
        assert np.allclose(sparse_model.coef_, dense_model.coef_, atol=1e-6)
        assert np.array_equal(
            sparse_model.predict(S), dense_model.predict(dense)
        )

    def test_auto_solver_dispatch(self, sparse_classification):
        S, dense, y = sparse_classification
        sparse_model = RidgeClassifier(solver="auto").fit(S, y)
        assert sparse_model.lsqr_iterations_ is not None
        dense_model = RidgeClassifier(solver="auto").fit(dense, y)
        assert dense_model.lsqr_iterations_ is None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RidgeClassifier(alpha=-1.0)
        with pytest.raises(ValueError):
            RidgeClassifier(solver="qr")

    def test_unfitted(self, rng):
        with pytest.raises(NotFittedError):
            RidgeClassifier().predict(rng.standard_normal((2, 3)))

    def test_string_labels(self, rng):
        X = np.vstack([rng.standard_normal((10, 4)),
                       rng.standard_normal((10, 4)) + 4.0])
        y = np.array(["neg"] * 10 + ["pos"] * 10)
        model = RidgeClassifier(alpha=1.0).fit(X, y)
        assert set(model.predict(X)) <= {"neg", "pos"}
        assert model.score(X, y) == 1.0
