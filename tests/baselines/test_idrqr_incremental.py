"""Unit tests for IDR/QR's incremental update (partial_fit)."""

import numpy as np
import pytest

from repro.baselines.idrqr import IDRQR


@pytest.fixture
def stream(rng):
    centers = 4.0 * rng.standard_normal((3, 12))

    def batch(per_class, seed):
        r = np.random.default_rng(seed)
        y = np.repeat(np.arange(3), per_class)
        X = centers[y] + r.standard_normal((3 * per_class, 12))
        return X, y

    return batch


class TestPartialFit:
    def test_unfitted_partial_fit_falls_back_to_fit(self, stream):
        X, y = stream(10, 1)
        model = IDRQR(alpha=1.0).partial_fit(X, y)
        assert model.components_ is not None
        assert model.score(X, y) > 0.9

    def test_streaming_matches_full_refit_closely(self, stream):
        """The update is approximate in Sw but must track the full refit
        closely on stationary data."""
        X0, y0 = stream(15, 1)
        X1, y1 = stream(5, 2)
        X2, y2 = stream(5, 3)
        X_test, y_test = stream(30, 4)

        incremental = IDRQR(alpha=1.0).fit(X0, y0)
        incremental.partial_fit(X1, y1)
        incremental.partial_fit(X2, y2)

        full = IDRQR(alpha=1.0).fit(
            np.vstack([X0, X1, X2]), np.concatenate([y0, y1, y2])
        )
        agreement = np.mean(
            incremental.predict(X_test) == full.predict(X_test)
        )
        assert agreement > 0.95
        assert incremental.score(X_test, y_test) > full.score(
            X_test, y_test
        ) - 0.05

    def test_mean_tracked_exactly(self, stream):
        X0, y0 = stream(10, 1)
        X1, y1 = stream(4, 2)
        model = IDRQR(alpha=1.0).fit(X0, y0)
        model.partial_fit(X1, y1)
        expected_mean = np.vstack([X0, X1]).mean(axis=0)
        assert np.allclose(model.mean_, expected_mean, atol=1e-12)

    def test_updates_improve_on_stale_model(self, rng, stream):
        """With a drifted class, incorporating new samples must help."""
        X0, y0 = stream(10, 1)
        model = IDRQR(alpha=1.0).fit(X0, y0)
        # class 0 drifts to a new location
        drift = 6.0 * rng.standard_normal(12)
        X_new = X0[y0 == 0] + drift
        y_new = np.zeros(X_new.shape[0], dtype=int)
        stale_score = model.score(X_new, y_new)
        model.partial_fit(X_new, y_new)
        updated_score = model.score(X_new, y_new)
        assert updated_score >= stale_score

    def test_unknown_label_rejected(self, stream):
        X0, y0 = stream(8, 1)
        model = IDRQR(alpha=1.0).fit(X0, y0)
        with pytest.raises(ValueError, match="unseen"):
            model.partial_fit(X0[:2], np.array([7, 7]))

    def test_wrong_feature_count_rejected(self, stream, rng):
        X0, y0 = stream(8, 1)
        model = IDRQR(alpha=1.0).fit(X0, y0)
        with pytest.raises(ValueError, match="feature"):
            model.partial_fit(rng.standard_normal((2, 5)), np.array([0, 1]))

    def test_length_mismatch_rejected(self, stream):
        X0, y0 = stream(8, 1)
        model = IDRQR(alpha=1.0).fit(X0, y0)
        with pytest.raises(ValueError, match="mismatch"):
            model.partial_fit(X0[:3], y0[:2])

    def test_single_sample_updates(self, stream):
        X0, y0 = stream(10, 1)
        model = IDRQR(alpha=1.0).fit(X0, y0)
        for i in range(6):
            model.partial_fit(X0[i : i + 1], y0[i : i + 1])
        assert np.all(np.isfinite(model.components_))
        assert model.score(X0, y0) > 0.9
