"""Unit tests for PCA and the two-stage PCA+LDA pipeline."""

import numpy as np
import pytest

from repro.baselines.lda import LDA
from repro.baselines.pca import PCA, PCALDA
from repro.core.base import NotFittedError


class TestPCA:
    def test_components_orthonormal(self, rng):
        X = rng.standard_normal((30, 8))
        model = PCA().fit(X)
        Q = model.components_
        assert np.allclose(Q.T @ Q, np.eye(Q.shape[1]), atol=1e-8)

    def test_explained_variance_matches_numpy(self, rng):
        X = rng.standard_normal((25, 6))
        model = PCA().fit(X)
        centered = X - X.mean(axis=0)
        expected = np.linalg.svd(centered, compute_uv=False) ** 2 / 24
        assert np.allclose(model.explained_variance_, expected[:6], atol=1e-8)

    def test_transform_decorrelates(self, rng):
        X = rng.standard_normal((50, 5)) @ rng.standard_normal((5, 5))
        Z = PCA().fit_transform(X)
        cov = np.cov(Z.T)
        off_diagonal = cov - np.diag(np.diag(cov))
        assert np.abs(off_diagonal).max() < 1e-8

    def test_inverse_transform_full_rank(self, rng):
        X = rng.standard_normal((20, 6))
        model = PCA().fit(X)
        assert np.allclose(
            model.inverse_transform(model.transform(X)), X, atol=1e-8
        )

    def test_truncated_reconstruction_error_ordered(self, rng):
        X = rng.standard_normal((30, 10))
        errors = []
        for k in (2, 5, 9):
            model = PCA(n_components=k).fit(X)
            reconstruction = model.inverse_transform(model.transform(X))
            errors.append(np.linalg.norm(X - reconstruction))
        assert errors[0] > errors[1] > errors[2]

    def test_first_component_is_max_variance_direction(self, rng):
        direction = np.array([3.0, 0.0, 0.0, 0.0])
        X = rng.standard_normal((100, 1)) * direction + 0.1 * rng.standard_normal(
            (100, 4)
        )
        model = PCA(n_components=1).fit(X)
        leading = np.abs(model.components_[:, 0])
        assert leading[0] > 0.99

    def test_pca_equals_svd_of_centered_data(self, rng):
        """The §II-A identity: SVD of centered X *is* PCA."""
        from repro.linalg.svd import cross_product_svd

        X = rng.standard_normal((20, 7))
        model = PCA().fit(X)
        _, s, V = cross_product_svd(X - X.mean(axis=0))
        assert np.allclose(np.abs(model.components_), np.abs(V), atol=1e-8)
        assert np.allclose(model.singular_values_, s, atol=1e-8)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            PCA().fit(np.ones((1, 4)))

    def test_unfitted(self, rng):
        with pytest.raises(NotFittedError):
            PCA().transform(rng.standard_normal((2, 3)))
        with pytest.raises(NotFittedError):
            PCA().inverse_transform(rng.standard_normal((2, 3)))


class TestPCALDA:
    def test_matches_direct_lda_predictions(self, small_classification):
        """Fisherfaces with full-rank PCA ≡ SVD-route LDA — the
        equivalence Section II-A establishes."""
        X, y = small_classification
        direct = LDA().fit(X, y)
        two_stage = PCALDA().fit(X, y)
        assert np.array_equal(direct.predict(X), two_stage.predict(X))

    def test_matches_direct_lda_in_undersampled_case(
        self, highdim_classification
    ):
        X, y = highdim_classification
        direct = LDA().fit(X, y)
        two_stage = PCALDA().fit(X, y)
        assert np.array_equal(direct.predict(X), two_stage.predict(X))

    def test_truncated_pca_stage(self, small_classification):
        X, y = small_classification
        model = PCALDA(pca_components=5).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_unfitted(self, rng):
        with pytest.raises(NotFittedError):
            PCALDA().transform(rng.standard_normal((2, 3)))
