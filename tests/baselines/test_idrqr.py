"""Unit tests for the IDR/QR baseline."""

import numpy as np
import pytest

from repro.baselines.idrqr import IDRQR


class TestIDRQR:
    def test_embedding_dimension(self, small_classification):
        X, y = small_classification
        model = IDRQR().fit(X, y)
        assert model.components_.shape == (X.shape[1], 2)

    def test_separable_data(self, small_classification):
        X, y = small_classification
        assert IDRQR().fit(X, y).score(X, y) == 1.0

    def test_components_live_in_centroid_span(self, small_classification):
        """The defining property: projections lie in span of the
        centered class centroids."""
        X, y = small_classification
        model = IDRQR().fit(X, y)
        mean = X.mean(axis=0)
        centroids = np.vstack(
            [X[y == k].mean(axis=0) - mean for k in range(3)]
        )
        # project components onto the centroid span; they must be fixed
        Q, _ = np.linalg.qr(centroids.T)
        projected = Q @ (Q.T @ model.components_)
        assert np.allclose(projected, model.components_, atol=1e-8)

    def test_invalid_ridge(self):
        with pytest.raises(ValueError):
            IDRQR(alpha=-1.0)

    def test_coincident_centroids_rejected(self, rng):
        X = np.tile(rng.standard_normal(4), (6, 1))
        X += 1e-14 * rng.standard_normal((6, 4))
        y = np.array([0, 1] * 3)
        with pytest.raises(ValueError, match="centroid"):
            IDRQR().fit(X, y)

    def test_undersampled_case(self, highdim_classification):
        X, y = highdim_classification
        model = IDRQR().fit(X, y)
        assert np.all(np.isfinite(model.components_))
        assert model.score(X, y) >= 0.9

    def test_n_components_cap(self, small_classification):
        X, y = small_classification
        model = IDRQR(n_components=1).fit(X, y)
        assert model.components_.shape[1] == 1

    def test_much_faster_than_lda_on_tall_problem(self, rng):
        """IDR/QR's selling point: avoid the big SVD.  We check work, not
        wall-clock: its reduced eigenproblem is c×c, so fitting scales in
        m·n·c, which for this shape means it must not allocate an
        (m, t)/(n, t) SVD factor pair.  Proxy: fit both and confirm the
        IDR/QR transformation is rank ≤ c-1 built from c centroid
        directions."""
        m, n, c = 300, 50, 3
        y = np.arange(m) % c
        X = rng.standard_normal((m, n)) + 3.0 * rng.standard_normal((c, n))[y]
        model = IDRQR().fit(X, y)
        assert np.linalg.matrix_rank(model.components_, tol=1e-8) <= c - 1

    def test_translation_invariant_predictions(self, small_classification):
        X, y = small_classification
        shift = 7.5 * np.ones(X.shape[1])
        a = IDRQR().fit(X, y)
        b = IDRQR().fit(X + shift, y)
        assert np.array_equal(a.predict(X), b.predict(X + shift))
