"""The complexity-contract machinery: grammar, probes, harness, ratchet.

Grammar tests pin the claim language (what parses, what the exponents
evaluate to); registry tests assert every registered probe is wired to
a real object whose docstring carries a parseable claim; harness tests
drive the tolerance and ratchet verdicts on synthetic results so they
stay deterministic, plus one real (tiny) empirical sweep.
"""

import json
import math

import numpy as np
import pytest

from repro.analysis.complexity.grammar import (
    CLAIM_MARKER_RE,
    VOCABULARY,
    ClaimParseError,
    claim_from_docstring,
    extract_claim_text,
    parse_claim,
)
from repro.analysis.complexity.harness import (
    DEFAULT_TOLERANCE,
    RATCHET_MARGIN,
    ProbeResult,
    baseline_payload,
    findings_from_results,
    load_baseline,
    run_probe,
    write_report,
)
from repro.analysis.complexity.probes import (
    PROBES,
    ProbeSpec,
    claim_for,
    claimed_exponent,
    get_probe,
    resolve_target,
)
from repro.complexity.counter import (
    ScalingMeasurement,
    loglog_slope,
    measure_scaling,
    measure_seconds,
)


# ----------------------------------------------------------------------
# Claim grammar
# ----------------------------------------------------------------------
class TestGrammar:
    @pytest.mark.parametrize(
        "text, variables",
        [
            ("nnz", ("nnz",)),
            ("m·c^2", ("c", "m")),
            ("m c", ("c", "m")),  # juxtaposition is multiplication
            ("iters·(nnz + m + n)", ("iters", "m", "n", "nnz")),
            ("nnz log nnz", ("nnz",)),
            ("m·n²", ("m", "n")),  # unicode superscript power
            ("m×n", ("m", "n")),  # unicode multiplication sign
            ("1", ()),
        ],
    )
    def test_valid_claims_parse(self, text, variables):
        claim = parse_claim(text)
        assert claim.variables == variables

    @pytest.mark.parametrize(
        "text",
        [
            "",  # empty
            "q",  # not in the vocabulary
            "m +",  # dangling operator
            "m^x",  # non-integer power
            "m (",  # unbalanced
            "m n ~",  # stray character
        ],
    )
    def test_invalid_claims_raise(self, text):
        with pytest.raises(ClaimParseError):
            parse_claim(text)

    def test_vocabulary_is_the_documented_seven(self):
        assert sorted(VOCABULARY) == [
            "c",
            "iters",
            "k",
            "m",
            "n",
            "nnz",
            "s",
        ]

    def test_evaluate(self):
        claim = parse_claim("iters·(nnz + m + n)")
        value = claim.evaluate({"iters": 2, "nnz": 100, "m": 10, "n": 5})
        assert value == 2 * (100 + 10 + 5)

    def test_scaling_exponent_linear(self):
        claim = parse_claim("nnz")
        assert claim.scaling_exponent({"nnz": 1.0}) == pytest.approx(1.0)

    def test_scaling_exponent_held_variables_are_constant(self):
        # c is held, so O(m·c^2) grows linearly in the size parameter.
        claim = parse_claim("m·c^2")
        assert claim.scaling_exponent({"m": 1.0}) == pytest.approx(1.0)

    def test_scaling_exponent_quadratic_coupling(self):
        claim = parse_claim("m·n")
        exponent = claim.scaling_exponent({"m": 1.0, "n": 1.0})
        assert exponent == pytest.approx(2.0)

    def test_scaling_exponent_sum_takes_dominant_term(self):
        claim = parse_claim("m^2 + n")
        exponent = claim.scaling_exponent({"m": 1.0, "n": 1.0})
        assert 1.9 < exponent <= 2.0

    def test_log_factor_contributes_sub_polynomial_growth(self):
        claim = parse_claim("nnz log nnz")
        exponent = claim.scaling_exponent({"nnz": 1.0})
        assert 1.0 < exponent < 1.2

    def test_normalized_rendering_round_trips(self):
        for text in ("m c", "iters·(nnz + m + n)", "nnz log nnz", "m·n²"):
            rendered = parse_claim(text).normalized()
            inner = rendered[len("O(") : -1]
            again = parse_claim(inner)
            values = {name: 3.0 for name in again.variables}
            assert again.evaluate(values) == pytest.approx(
                parse_claim(text).evaluate(values)
            )

    def test_extract_from_docstring_prose_tail_ignored(self):
        doc = "Does a thing.\n\nComplexity: O(m·c) per call, amortized.\n"
        assert extract_claim_text(doc) == "m·c"

    def test_extract_unclosed_parenthesis_raises(self):
        with pytest.raises(ClaimParseError):
            extract_claim_text("Complexity: O(m·c per call.\n")

    def test_literal_ellipsis_is_a_mention_not_a_claim(self):
        # This is how docs talk *about* the grammar.
        doc = "Requires a `Complexity: O(...)` line."
        assert CLAIM_MARKER_RE.search(doc) is None
        assert claim_from_docstring(doc) is None

    def test_no_claim_returns_none(self):
        assert claim_from_docstring("Just prose.") is None
        assert claim_from_docstring(None) is None


# ----------------------------------------------------------------------
# Probe registry wiring
# ----------------------------------------------------------------------
class TestProbeRegistry:
    def test_at_least_eight_probes_including_the_required_kernels(self):
        assert len(PROBES) >= 8
        for required in (
            "csr_matvec",
            "csr_matmat",
            "countsketch_apply",
            "srda_fit_sparse",
        ):
            assert required in PROBES

    @pytest.mark.parametrize("name", sorted(PROBES))
    def test_every_probe_targets_a_parseable_claim(self, name):
        spec = get_probe(name)
        assert resolve_target(spec) is not None
        claim = claim_for(spec)
        exponent = claimed_exponent(spec)
        assert math.isfinite(exponent)
        assert 0.0 <= exponent <= 3.0
        # every coupling variable must be meaningful to the claim or a
        # documented vocabulary symbol (couplings may scale variables
        # the claim does not mention, e.g. m for an O(nnz) claim)
        for variable in spec.couplings:
            assert variable in VOCABULARY
        assert claim.variables  # a constant claim cannot be probed

    def test_unknown_probe_name_raises(self):
        with pytest.raises(ValueError, match="unknown probe"):
            get_probe("definitely_not_registered")

    def test_duplicate_registration_rejected(self):
        from repro.analysis.complexity.probes import register_probe

        existing = get_probe("csr_matvec")
        with pytest.raises(ValueError, match="duplicate"):
            register_probe(existing)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_probe("csr_matvec").sizes_for("galactic")


# ----------------------------------------------------------------------
# Scaling-probe primitives (repro.complexity.counter)
# ----------------------------------------------------------------------
class TestScalingPrimitives:
    def test_measure_seconds_positive_and_repeat_validated(self):
        assert measure_seconds(lambda: None, repeats=1, min_time=0.0) > 0
        with pytest.raises(ValueError):
            measure_seconds(lambda: None, repeats=0)

    def test_measure_scaling_fits_a_linear_kernel(self):
        def make(size):
            x = np.zeros(size)
            return lambda: x + 1.0

        sweep = measure_scaling(make, [50_000, 100_000, 200_000, 400_000])
        assert isinstance(sweep, ScalingMeasurement)
        assert len(sweep.costs) == 4
        assert 0.4 < sweep.slope < 1.6

    def test_measure_scaling_needs_two_sizes(self):
        with pytest.raises(ValueError):
            measure_scaling(lambda size: (lambda: None), [100])

    def test_slope_property_matches_loglog_slope(self):
        sweep = ScalingMeasurement(sizes=(10, 100), costs=(1.0, 10.0))
        assert sweep.slope == pytest.approx(
            loglog_slope((10, 100), (1.0, 10.0))
        )


# ----------------------------------------------------------------------
# Harness verdicts (synthetic, deterministic)
# ----------------------------------------------------------------------
def _result(name="csr_matvec", fitted=1.0, claimed=1.0):
    spec = get_probe(name)
    return ProbeResult(
        name=name,
        module=spec.module,
        qualname=spec.qualname,
        claim="O(nnz)",
        claimed_exponent=claimed,
        fitted_exponent=fitted,
        sizes=(1000, 2000),
        costs=(1e-4, 2e-4),
    )


class TestHarnessVerdicts:
    def test_within_tolerance_is_clean(self):
        results = [_result(fitted=1.0 + DEFAULT_TOLERANCE - 0.01)]
        assert findings_from_results(results) == []

    def test_exceeding_tolerance_fires_rpr009_at_the_kernel_def(self):
        results = [_result(fitted=2.1)]
        (finding,) = findings_from_results(results)
        assert finding.rule_id == "RPR009"
        assert "exceeds the claimed" in finding.message
        assert finding.path.endswith("src/repro/linalg/sparse.py")
        assert finding.line > 1  # anchored at the claimed def, not line 1

    def test_ratchet_fires_inside_the_absolute_band(self):
        # 1.30 is within tolerance of the claim but far above a 0.9
        # baseline: the ratchet catches claims whose slack erodes.
        baseline = {
            "probes": {"csr_matvec": {"fitted_exponent": 0.9}},
        }
        results = [_result(fitted=0.9 + RATCHET_MARGIN + 0.1)]
        (finding,) = findings_from_results(results, baseline=baseline)
        assert finding.rule_id == "RPR009"
        assert "complexity_baseline.json" in finding.message

    def test_ratchet_silent_without_baseline_entry(self):
        baseline = {"probes": {"some_other_probe": {"fitted_exponent": 1.0}}}
        results = [_result(fitted=1.3)]
        assert findings_from_results(results, baseline=baseline) == []

    def test_baseline_round_trip(self, tmp_path):
        results = [_result()]
        payload = baseline_payload(results, scale="smoke")
        path = tmp_path / "complexity_baseline.json"
        path.write_text(json.dumps(payload))
        loaded = load_baseline(path)
        assert loaded["probes"]["csr_matvec"]["claim"] == "O(nnz)"
        assert load_baseline(tmp_path / "missing.json") is None

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a complexity baseline"):
            load_baseline(path)

    def test_report_written_with_violations(self, tmp_path):
        results = [_result(fitted=2.5)]
        findings = findings_from_results(results)
        report = tmp_path / "out" / "report.json"
        write_report(report, results, findings, scale="smoke")
        payload = json.loads(report.read_text())
        assert payload["scale"] == "smoke"
        assert payload["probes"]["csr_matvec"]["fitted_exponent"] == 2.5
        assert payload["violations"][0]["rule"] == "RPR009"


# ----------------------------------------------------------------------
# One real sweep, kept tiny: the machinery measures an actual kernel.
# ----------------------------------------------------------------------
class TestEmpiricalSweep:
    def test_csr_matvec_probe_measures_near_linear(self):
        spec = get_probe("csr_matvec")
        tiny = ProbeSpec(
            name="csr_matvec_tiny",
            module=spec.module,
            qualname=spec.qualname,
            couplings=spec.couplings,
            build=spec.build,
            sizes={"smoke": (4_000, 16_000, 64_000)},
        )
        result = run_probe(tiny, scale="smoke", seed=7)
        assert result.claim == "O(nnz)"
        assert result.claimed_exponent == pytest.approx(1.0)
        # generous band: CI machines are noisy, and the harness's own
        # tolerance is what real enforcement uses
        assert 0.3 < result.fitted_exponent < 1.7
        assert result.sizes == (4_000, 16_000, 64_000)
        assert all(cost > 0 for cost in result.costs)

    def test_checked_in_baseline_matches_registry(self):
        from pathlib import Path

        baseline_file = (
            Path(__file__).resolve().parents[2] / "complexity_baseline.json"
        )
        payload = load_baseline(baseline_file)
        assert payload is not None
        assert sorted(payload["probes"]) == sorted(PROBES)
        for name, entry in payload["probes"].items():
            spec = get_probe(name)
            assert entry["module"] == spec.module
            assert entry["qualname"] == spec.qualname
            # the recorded claim must match the docstring's current one
            assert entry["claim"] == claim_for(spec).normalized()
            assert abs(
                entry["fitted_exponent"] - entry["claimed_exponent"]
            ) <= DEFAULT_TOLERANCE
