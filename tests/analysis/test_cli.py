"""Exit codes and report formats of ``python -m repro.analysis``."""

import json

from repro.analysis.cli import main


def write_tree(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def test_clean_tree_exits_zero(tmp_path, capsys):
    root = write_tree(tmp_path, {"src/repro/core/ok.py": "VALUE = 1\n"})
    assert main([str(root / "src")]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_findings_exit_one_with_rule_id_and_location(tmp_path, capsys):
    root = write_tree(
        tmp_path,
        {
            "src/repro/core/bad.py": (
                "def fit():\n    raise RuntimeError('x')\n"
            )
        },
    )
    assert main([str(root / "src")]) == 1
    out = capsys.readouterr().out
    assert "RPR003" in out
    assert "bad.py:2" in out


def test_json_format(tmp_path, capsys):
    root = write_tree(
        tmp_path,
        {"src/repro/core/bad.py": "def record(h=[]):\n    return h\n"},
    )
    assert main([str(root / "src"), "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["n_findings"] == 1
    (finding,) = document["findings"]
    assert finding["rule_id"] == "RPR006"
    assert finding["line"] == 1


def test_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "does-not-exist")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"):
        assert rule_id in out


def test_explain_known_rule(capsys):
    assert main(["--explain", "rpr005"]) == 0
    out = capsys.readouterr().out
    assert "RPR005" in out
    assert "rationale" in out


def test_explain_unknown_rule(capsys):
    assert main(["--explain", "RPR999"]) == 2


def test_select_filters_rules(tmp_path, capsys):
    root = write_tree(
        tmp_path,
        {
            "src/repro/core/bad.py": (
                "def fit(h=[]):\n    raise RuntimeError('x')\n"
            )
        },
    )
    assert main([str(root / "src"), "--select", "RPR006"]) == 1
    out = capsys.readouterr().out
    assert "RPR006" in out
    assert "RPR003" not in out


def test_ignore_filters_rules(tmp_path, capsys):
    root = write_tree(
        tmp_path,
        {"src/repro/core/bad.py": "def record(h=[]):\n    return h\n"},
    )
    assert main([str(root / "src"), "--ignore", "RPR006"]) == 0


def test_suppressions_are_counted(tmp_path, capsys):
    root = write_tree(
        tmp_path,
        {
            "src/repro/core/ok.py": (
                "def record(h=[]):  # repro: noqa-RPR006 — fixture\n    return h\n"
            )
        },
    )
    assert main([str(root / "src")]) == 0
    assert "1 suppressed" in capsys.readouterr().out


def test_complexity_unknown_probe_exits_two(capsys):
    assert main(["--complexity", "--complexity-probes", "nope"]) == 2
    assert "unknown probe" in capsys.readouterr().err


def test_complexity_single_probe_writes_baseline_and_report(
    tmp_path, capsys
):
    baseline = tmp_path / "complexity_baseline.json"
    report = tmp_path / "report.json"
    code = main(
        [
            "--complexity",
            "--complexity-probes",
            "csr_matvec",
            "--complexity-baseline",
            str(baseline),
            "--update-complexity-baseline",
            "--complexity-report",
            str(report),
            "--format",
            "json",
        ]
    )
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["n_findings"] == 0
    payload = json.loads(baseline.read_text())
    assert set(payload["probes"]) == {"csr_matvec"}
    entry = payload["probes"]["csr_matvec"]
    assert entry["claim"] == "O(nnz)"
    assert len(entry["sizes"]) == len(entry["costs"]) >= 4
    assert json.loads(report.read_text())["violations"] == []


def test_complexity_check_against_baseline(tmp_path, capsys):
    baseline = tmp_path / "complexity_baseline.json"
    args = [
        "--complexity",
        "--complexity-probes",
        "csr_matvec",
        "--complexity-baseline",
        str(baseline),
    ]
    assert main(args + ["--update-complexity-baseline"]) == 0
    capsys.readouterr()
    # second run checks tolerance AND the just-written ratchet
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
