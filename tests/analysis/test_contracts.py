"""Property tests: every shipped operator satisfies the numeric contracts.

Hypothesis draws shapes, dtypes, and seeds; :func:`verify_operator`
checks the adjoint identity, block/column agreement, and shape/dtype
conformance on random probes.  A deliberately broken adjoint must fail
with :class:`~repro.exceptions.ContractViolationError`.
"""

import numpy as np
import pytest

from repro.analysis import verify_operator
from repro.exceptions import ContractViolationError, ReproError
from repro.linalg.operators import (
    AppendOnesOperator,
    CenteringOperator,
    CSROperator,
    DenseOperator,
    FaultyOperator,
    IdentityOperator,
    ScaledOperator,
    StackedOperator,
    TransposedOperator,
)
from repro.linalg.sparse import CSRMatrix

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

SETTINGS = dict(max_examples=25, deadline=None)

dims = st.integers(min_value=1, max_value=12)
dtypes = st.sampled_from([np.float32, np.float64])
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def make_dense(m, n, dtype, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, n)).astype(dtype)


def make_csr(m, n, dtype, seed):
    dense = make_dense(m, n, dtype, seed)
    dense[np.abs(dense) < 0.4] = 0.0
    return CSRMatrix.from_dense(dense)


@settings(**SETTINGS)
@given(m=dims, n=dims, dtype=dtypes, seed=seeds)
def test_dense_operator_contract(m, n, dtype, seed):
    report = verify_operator(DenseOperator(make_dense(m, n, dtype, seed)))
    assert report.ok
    assert report.dtype == str(np.dtype(dtype))


@settings(**SETTINGS)
@given(m=dims, n=dims, dtype=dtypes, seed=seeds)
def test_csr_operator_contract(m, n, dtype, seed):
    report = verify_operator(CSROperator(make_csr(m, n, dtype, seed)))
    assert report.ok
    assert report.dtype == str(np.dtype(dtype))


@settings(**SETTINGS)
@given(m=dims, n=dims, dtype=dtypes, seed=seeds)
def test_centering_operator_contract(m, n, dtype, seed):
    base = DenseOperator(make_dense(m, n, dtype, seed))
    report = verify_operator(CenteringOperator(base))
    assert report.ok
    assert report.dtype == str(np.dtype(dtype))


@settings(**SETTINGS)
@given(m=dims, n=dims, dtype=dtypes, seed=seeds)
def test_centering_csr_operator_contract(m, n, dtype, seed):
    base = CSROperator(make_csr(m, n, dtype, seed))
    report = verify_operator(CenteringOperator(base))
    assert report.ok


@settings(**SETTINGS)
@given(m=dims, n=dims, dtype=dtypes, seed=seeds)
def test_append_ones_operator_contract(m, n, dtype, seed):
    base = DenseOperator(make_dense(m, n, dtype, seed))
    report = verify_operator(AppendOnesOperator(base))
    assert report.ok
    assert report.shape == (m, n + 1)


@settings(**SETTINGS)
@given(m=dims, n=dims, dtype=dtypes, seed=seeds)
def test_transposed_operator_contract(m, n, dtype, seed):
    report = verify_operator(
        TransposedOperator(DenseOperator(make_dense(m, n, dtype, seed)))
    )
    assert report.ok


@settings(**SETTINGS)
@given(m=dims, n=dims, dtype=dtypes, seed=seeds)
def test_stacked_operator_contract(m, n, dtype, seed):
    top = DenseOperator(make_dense(m, n, dtype, seed))
    bottom = IdentityOperator(n, scale=0.75, dtype=dtype)
    report = verify_operator(StackedOperator(top, bottom))
    assert report.ok
    assert report.dtype == str(np.dtype(dtype))


@settings(**SETTINGS)
@given(n=dims, dtype=dtypes, seed=seeds)
def test_scaled_and_identity_operator_contract(n, dtype, seed):
    assert verify_operator(IdentityOperator(n, scale=2.0, dtype=dtype)).ok
    base = DenseOperator(make_dense(n, n, dtype, seed))
    assert verify_operator(ScaledOperator(base, -1.5)).ok


@settings(**SETTINGS)
@given(m=dims, n=dims, dtype=dtypes, seed=seeds)
def test_faulty_operator_without_faults_contract(m, n, dtype, seed):
    base = DenseOperator(make_dense(m, n, dtype, seed))
    assert verify_operator(FaultyOperator(base)).ok


class BrokenAdjointOperator(DenseOperator):  # repro: noqa-RPR005 — deliberately half-broken fixture
    """rmatvec returns the transpose product plus a systematic offset."""

    def _rmatvec(self, u):
        return super()._rmatvec(u) + 1.0


class WrongShapeOperator(DenseOperator):  # repro: noqa-RPR005 — deliberately half-broken fixture
    def _matvec(self, v):
        return np.append(super()._matvec(v), 0.0)


class UpcastingOperator(DenseOperator):  # repro: noqa-RPR005 — deliberately half-broken fixture
    def _matvec(self, v):
        return super()._matvec(v).astype(np.float64)


def test_broken_adjoint_raises():
    X = make_dense(8, 5, np.float64, 3)
    with pytest.raises(ContractViolationError) as excinfo:
        verify_operator(BrokenAdjointOperator(X))
    assert any("adjoint-identity" in f for f in excinfo.value.failures)


def test_contract_violation_is_a_repro_error():
    X = make_dense(6, 4, np.float64, 4)
    with pytest.raises(ReproError):
        verify_operator(BrokenAdjointOperator(X))


def test_broken_adjoint_report_without_raise():
    X = make_dense(8, 5, np.float64, 3)
    report = verify_operator(BrokenAdjointOperator(X), raise_on_failure=False)
    assert not report.ok
    assert report.failures


def test_wrong_shape_detected():
    X = make_dense(7, 4, np.float64, 5)
    report = verify_operator(WrongShapeOperator(X), raise_on_failure=False)
    assert any("matvec-shape" in f for f in report.failures)


def test_silent_upcast_detected():
    X = make_dense(7, 4, np.float32, 6)
    report = verify_operator(UpcastingOperator(X), raise_on_failure=False)
    assert any("matvec-dtype" in f for f in report.failures)


def test_poisoned_output_detected():
    base = DenseOperator(make_dense(6, 4, np.float64, 7))
    poisoned = FaultyOperator(base, fail_every=1, mode="nan")
    report = verify_operator(poisoned, raise_on_failure=False)
    assert any("finite" in f for f in report.failures)


def test_counters_restored_after_verification():
    op = DenseOperator(make_dense(6, 4, np.float64, 8))
    op.matvec(np.ones(4))
    verify_operator(op)
    assert (op.n_matvec, op.n_rmatvec, op.n_matmat, op.n_rmatmat) == (
        1,
        0,
        0,
        0,
    )


def test_verifier_is_deterministic():
    X = make_dense(9, 5, np.float64, 9)
    first = verify_operator(DenseOperator(X))
    second = verify_operator(DenseOperator(X))
    assert [str(c) for c in first.checks] == [str(c) for c in second.checks]


def test_accepts_raw_arrays_via_as_operator():
    X = make_dense(5, 3, np.float64, 10)
    assert verify_operator(X).ok
