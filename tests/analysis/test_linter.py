"""Per-rule fixtures for the numeric-contract linter.

Every rule gets a *bad* snippet that must fire with the right rule ID
and line, and a *good twin* — the closest conforming code — that must
stay silent.  Paths are synthetic: rule scoping keys off path parts,
so ``src/repro/linalg/sparse.py`` marks a kernel module without any
file existing on disk.
"""

import textwrap

from repro.analysis.linter import lint_paths, lint_source
from repro.analysis.rules import DEFAULT_RULES, rules_by_id

KERNEL_PATH = "src/repro/linalg/sparse.py"
CORE_PATH = "src/repro/core/srda.py"
PLAIN_PATH = "src/repro/eval/experiment.py"
TEST_PATH = "tests/linalg/test_sparse.py"


def findings_for(source, path, rule_id=None):
    findings, _ = lint_source(textwrap.dedent(source), path)
    if rule_id is None:
        return findings
    return [f for f in findings if f.rule_id == rule_id]


def suppressed_count(source, path):
    _, n_suppressed = lint_source(textwrap.dedent(source), path)
    return n_suppressed


# ----------------------------------------------------------------------
# RPR001 — dtype-literal drift in kernel modules
# ----------------------------------------------------------------------
class TestDtypeLiteralDrift:
    def test_dtype_float_keyword_fires(self):
        bad = """
        import numpy as np

        def kernel(v):
            return np.zeros(3, dtype=float)
        """
        found = findings_for(bad, KERNEL_PATH, "RPR001")
        assert len(found) == 1
        assert found[0].line == 5

    def test_dtype_string_literal_fires(self):
        bad = """
        import numpy as np

        out = np.empty(4, dtype="float")
        """
        assert len(findings_for(bad, KERNEL_PATH, "RPR001")) == 1

    def test_float64_cast_call_fires(self):
        bad = """
        import numpy as np

        def shift(mu, v):
            return np.float64(mu @ v)
        """
        assert len(findings_for(bad, KERNEL_PATH, "RPR001")) == 1

    def test_good_twin_dtype_np_float64_is_deliberate(self):
        good = """
        import numpy as np

        def kernel(v):
            return np.zeros(3, dtype=np.float64)
        """
        assert findings_for(good, KERNEL_PATH, "RPR001") == []

    def test_good_twin_propagated_dtype(self):
        good = """
        import numpy as np

        def kernel(v, op):
            return np.zeros(3, dtype=op.dtype)
        """
        assert findings_for(good, KERNEL_PATH, "RPR001") == []

    def test_rule_scoped_to_kernel_modules(self):
        bad = """
        import numpy as np

        out = np.zeros(3, dtype=float)
        """
        assert findings_for(bad, PLAIN_PATH, "RPR001") == []


# ----------------------------------------------------------------------
# RPR002 — bare / over-broad except
# ----------------------------------------------------------------------
class TestOverBroadExcept:
    def test_bare_except_fires(self):
        bad = """
        try:
            risky()
        except:
            pass
        """
        found = findings_for(bad, PLAIN_PATH, "RPR002")
        assert len(found) == 1
        assert found[0].line == 4

    def test_except_exception_fires(self):
        bad = """
        try:
            risky()
        except Exception:
            pass
        """
        assert len(findings_for(bad, PLAIN_PATH, "RPR002")) == 1

    def test_exception_inside_tuple_fires(self):
        bad = """
        try:
            risky()
        except (ValueError, Exception):
            pass
        """
        assert len(findings_for(bad, PLAIN_PATH, "RPR002")) == 1

    def test_good_twin_specific_exception(self):
        good = """
        try:
            risky()
        except ValueError:
            pass
        """
        assert findings_for(good, PLAIN_PATH, "RPR002") == []


# ----------------------------------------------------------------------
# RPR003 — foreign exception types from numeric packages
# ----------------------------------------------------------------------
class TestForeignException:
    def test_raise_runtime_error_fires_in_core(self):
        bad = """
        def fit():
            raise RuntimeError("solver diverged")
        """
        found = findings_for(bad, CORE_PATH, "RPR003")
        assert len(found) == 1
        assert found[0].line == 3

    def test_raise_exception_fires(self):
        bad = """
        def fit():
            raise Exception("boom")
        """
        assert len(findings_for(bad, CORE_PATH, "RPR003")) == 1

    def test_good_twin_repro_exception(self):
        good = """
        from repro.exceptions import ConvergenceError

        def fit():
            raise ConvergenceError("solver diverged")
        """
        assert findings_for(good, CORE_PATH, "RPR003") == []

    def test_value_error_is_allowed(self):
        good = """
        def fit(n):
            if n < 0:
                raise ValueError("n must be non-negative")
        """
        assert findings_for(good, CORE_PATH, "RPR003") == []

    def test_tests_are_out_of_scope(self):
        bad = """
        def helper():
            raise RuntimeError("fixture failure")
        """
        assert findings_for(bad, TEST_PATH, "RPR003") == []


# ----------------------------------------------------------------------
# RPR004 — unseeded randomness in package source
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def test_legacy_global_call_fires(self):
        bad = """
        import numpy as np

        noise = np.random.randn(10)
        """
        found = findings_for(bad, CORE_PATH, "RPR004")
        assert len(found) == 1
        assert found[0].line == 4

    def test_seedless_default_rng_fires(self):
        bad = """
        import numpy as np

        rng = np.random.default_rng()
        """
        assert len(findings_for(bad, CORE_PATH, "RPR004")) == 1

    def test_good_twin_seeded_generator(self):
        good = """
        import numpy as np

        def sample(seed):
            rng = np.random.default_rng(seed)
            return rng.standard_normal(10)
        """
        assert findings_for(good, CORE_PATH, "RPR004") == []

    def test_tests_are_out_of_scope(self):
        bad = """
        import numpy as np

        noise = np.random.randn(10)
        """
        assert findings_for(bad, TEST_PATH, "RPR004") == []


# ----------------------------------------------------------------------
# RPR005 — missing adjoint methods
# ----------------------------------------------------------------------
class TestMissingAdjoint:
    def test_matvec_without_rmatvec_fires(self):
        bad = """
        class Lopsided:
            def matvec(self, v):
                return v
        """
        found = findings_for(bad, PLAIN_PATH, "RPR005")
        assert len(found) == 1
        assert "rmatvec" in found[0].message

    def test_private_matmat_without_rmatmat_fires(self):
        bad = """
        class Lopsided:
            def _matmat(self, B):
                return B
        """
        assert len(findings_for(bad, PLAIN_PATH, "RPR005")) == 1

    def test_good_twin_complete_pair(self):
        good = """
        class Balanced:
            def matvec(self, v):
                return v

            def rmatvec(self, u):
                return u
        """
        assert findings_for(good, PLAIN_PATH, "RPR005") == []

    def test_unrelated_class_silent(self):
        good = """
        class Report:
            def summary(self):
                return "ok"
        """
        assert findings_for(good, PLAIN_PATH, "RPR005") == []


# ----------------------------------------------------------------------
# RPR006 — mutable default arguments
# ----------------------------------------------------------------------
class TestMutableDefault:
    def test_list_literal_default_fires(self):
        bad = """
        def record(history=[]):
            history.append(1)
            return history
        """
        found = findings_for(bad, PLAIN_PATH, "RPR006")
        assert len(found) == 1
        assert found[0].line == 2

    def test_dict_call_default_fires(self):
        bad = """
        def record(stats=dict()):
            return stats
        """
        assert len(findings_for(bad, PLAIN_PATH, "RPR006")) == 1

    def test_keyword_only_default_fires(self):
        bad = """
        def record(*, history=[]):
            return history
        """
        assert len(findings_for(bad, PLAIN_PATH, "RPR006")) == 1

    def test_good_twin_none_sentinel(self):
        good = """
        def record(history=None):
            if history is None:
                history = []
            return history
        """
        assert findings_for(good, PLAIN_PATH, "RPR006") == []

    def test_immutable_defaults_silent(self):
        good = """
        def configure(shape=(3, 4), name="x", count=0):
            return shape, name, count
        """
        assert findings_for(good, PLAIN_PATH, "RPR006") == []


# ----------------------------------------------------------------------
# RPR007 — noqa suppressions must carry a justification
# ----------------------------------------------------------------------
class TestUnjustifiedNoqa:
    def test_bare_noqa_without_justification_fires(self):
        bad = """
        try:
            risky()
        except Exception:  # repro: noqa-RPR002
            pass
        """
        found = findings_for(bad, PLAIN_PATH, "RPR007")
        assert len(found) == 1
        assert found[0].line == 4

    def test_inline_prose_is_a_justification(self):
        good = """
        try:
            risky()
        except Exception:  # repro: noqa-RPR002 — CLI boundary
            pass
        """
        assert findings_for(good, PLAIN_PATH, "RPR007") == []

    def test_comment_line_above_is_a_justification(self):
        good = """
        try:
            risky()
        # the retry harness must survive any solver failure mode
        except Exception:  # repro: noqa-RPR002
            pass
        """
        assert findings_for(good, PLAIN_PATH, "RPR007") == []

    def test_noqa_comment_above_does_not_justify(self):
        bad = """
        def f(a=[]):  # repro: noqa-RPR006 — fixture
            return a
        def g(b=[]):  # repro: noqa-RPR006
            return b
        """
        found = findings_for(bad, PLAIN_PATH, "RPR007")
        assert [f.line for f in found] == [4]

    def test_noqa_inside_string_literal_is_ignored(self):
        good = '''
        DOC = """
        suppress with  # repro: noqa-RPR002
        """
        '''
        assert findings_for(good, PLAIN_PATH, "RPR007") == []

    def test_rpr007_cannot_suppress_itself(self):
        # A blanket noqa would normally silence every rule on its line;
        # the hygiene rule must still fire or it would be vacuous.
        bad = """
        def record(history=[]):  # repro: noqa
            return history
        """
        assert len(findings_for(bad, PLAIN_PATH, "RPR007")) == 1
        assert not rules_by_id()["RPR007"].suppressible


# ----------------------------------------------------------------------
# noqa suppression
# ----------------------------------------------------------------------
class TestNoqaSuppression:
    def test_coded_noqa_suppresses_matching_rule(self):
        source = """
        try:
            risky()
        except Exception:  # repro: noqa-RPR002
            pass
        """
        assert findings_for(source, PLAIN_PATH, "RPR002") == []
        assert suppressed_count(source, PLAIN_PATH) == 1

    def test_coded_noqa_does_not_suppress_other_rules(self):
        source = """
        def record(history=[]):  # repro: noqa-RPR002
            return history
        """
        assert len(findings_for(source, PLAIN_PATH, "RPR006")) == 1

    def test_blanket_noqa_suppresses_everything(self):
        source = """
        def record(history=[]):  # repro: noqa — test fixture
            return history
        """
        assert findings_for(source, PLAIN_PATH) == []
        assert suppressed_count(source, PLAIN_PATH) == 1

    def test_comma_separated_codes(self):
        source = """
        try:
            risky()
        except Exception:  # repro: noqa-RPR002,RPR006 — test fixture
            pass
        """
        assert findings_for(source, PLAIN_PATH) == []

    def test_noqa_on_other_line_does_not_leak(self):
        source = """
        # repro: noqa-RPR006
        def record(history=[]):
            return history
        """
        assert len(findings_for(source, PLAIN_PATH, "RPR006")) == 1


# ----------------------------------------------------------------------
# Driver-level behavior
# ----------------------------------------------------------------------
class TestDriver:
    def test_syntax_error_reports_rpr000(self):
        findings = findings_for("def broken(:\n    pass\n", CORE_PATH)
        assert [f.rule_id for f in findings] == ["RPR000"]

    def test_rule_ids_are_unique_and_stable(self):
        ids = [rule.rule_id for rule in DEFAULT_RULES]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)
        assert set(rules_by_id()) == set(ids)

    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "def fit():\n    raise RuntimeError('x')\n"
        )
        (pkg / "good.py").write_text("VALUE = 1\n")
        result = lint_paths([tmp_path / "src"])
        assert result.n_files == 2
        assert [f.rule_id for f in result.findings] == ["RPR003"]
        assert not result.ok

    def test_lint_paths_select_and_ignore(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "def fit(h=[]):\n    raise RuntimeError('x')\n"
        )
        only_006 = lint_paths([tmp_path / "src"], select=["RPR006"])
        assert [f.rule_id for f in only_006.findings] == ["RPR006"]
        without_006 = lint_paths([tmp_path / "src"], ignore=["RPR006"])
        assert "RPR006" not in [f.rule_id for f in without_006.findings]


# ----------------------------------------------------------------------
# RPR008 — complexity claims on kernel entry points
# ----------------------------------------------------------------------
class TestComplexityClaim:
    def test_public_kernel_function_without_claim_fires(self):
        bad = '''
        def matvec(v):
            """Multiply, quickly."""
            return v
        '''
        found = findings_for(bad, KERNEL_PATH, "RPR008")
        assert len(found) == 1
        assert found[0].line == 2
        assert "matvec()" in found[0].message

    def test_missing_docstring_fires(self):
        bad = """
        def matvec(v):
            return v
        """
        assert len(findings_for(bad, KERNEL_PATH, "RPR008")) == 1

    def test_good_twin_parseable_claim(self):
        good = '''
        def matvec(v):
            """Multiply.

            Complexity: O(nnz) — one pass over stored entries.
            """
            return v
        '''
        assert findings_for(good, KERNEL_PATH, "RPR008") == []

    def test_malformed_claim_fires_even_when_present(self):
        bad = '''
        def matvec(v):
            """Multiply.

            Complexity: O(rows·cols)
            """
            return v
        '''
        found = findings_for(bad, KERNEL_PATH, "RPR008")
        assert len(found) == 1
        assert "grammar" in found[0].message

    def test_malformed_claim_on_method_fires_outside_kernel_scope(self):
        # Claims are optional on methods and in non-designated modules,
        # but a claim that IS written must parse anywhere.
        bad = '''
        class Model:
            def fit(self, X):
                """Complexity: O(banana)"""
                return self
        '''
        found = findings_for(bad, PLAIN_PATH, "RPR008")
        assert len(found) == 1

    def test_private_and_non_kernel_functions_exempt(self):
        good = '''
        def _helper(v):
            """No claim needed on private helpers."""
            return v
        '''
        assert findings_for(good, KERNEL_PATH, "RPR008") == []
        no_claim = '''
        def run(v):
            """Non-kernel modules need no claims."""
            return v
        '''
        assert findings_for(no_claim, PLAIN_PATH, "RPR008") == []

    def test_prose_mention_of_the_grammar_is_not_a_claim(self):
        good = '''
        def _describe():
            """Every kernel carries a `Complexity: O(...)` line."""
            return None
        '''
        assert findings_for(good, PLAIN_PATH, "RPR008") == []

    def test_noqa_with_justification_suppresses_rpr008(self):
        source = '''
        def matvec(v):  # repro: noqa-RPR008 — cost depends on the plugin
            """Dispatch to a plugin kernel."""
            return v
        '''
        assert findings_for(source, KERNEL_PATH, "RPR008") == []
        assert findings_for(source, KERNEL_PATH, "RPR007") == []
        assert suppressed_count(source, KERNEL_PATH) == 1

    def test_bare_noqa_on_rpr008_requires_justification(self):
        source = '''
        def matvec(v):  # repro: noqa-RPR008
            """Dispatch."""
            return v
        '''
        assert findings_for(source, KERNEL_PATH, "RPR008") == []
        assert len(findings_for(source, KERNEL_PATH, "RPR007")) == 1


# ----------------------------------------------------------------------
# RPR009 — catalog-only: produced by the harness, never by the AST
# ----------------------------------------------------------------------
class TestEmpiricalComplexityCatalogEntry:
    def test_registered_with_stable_id(self):
        rule = rules_by_id()["RPR009"]
        assert rule.name == "complexity-contract-violation"

    def test_never_applies_to_any_path(self):
        rule = rules_by_id()["RPR009"]
        assert not rule.applies_to(KERNEL_PATH)
        assert not rule.applies_to("anything/at/all.py")

    def test_lint_never_yields_rpr009(self):
        source = """
        import numpy as np

        def kernel(v):
            return np.dot(v, v)
        """
        assert findings_for(source, KERNEL_PATH, "RPR009") == []


# ----------------------------------------------------------------------
# RPR010 — float64 temporaries inside kernel loops
# ----------------------------------------------------------------------
class TestFloat64LoopTemporary:
    def test_dtypeless_zeros_in_loop_fires(self):
        bad = """
        import numpy as np

        def kernel(blocks):
            for block in blocks:
                scratch = np.zeros(block.shape)
                scratch += block
        """
        found = findings_for(bad, KERNEL_PATH, "RPR010")
        assert len(found) == 1
        assert found[0].line == 6

    def test_explicit_float64_in_while_loop_fires(self):
        bad = """
        import numpy as np

        def kernel(n):
            while n > 0:
                buf = np.empty(n, dtype=np.float64)
                n -= 1
        """
        assert len(findings_for(bad, KERNEL_PATH, "RPR010")) == 1

    def test_astype_float64_in_loop_fires(self):
        bad = """
        import numpy as np

        def kernel(blocks):
            for block in blocks:
                yield block.astype(np.float64)
        """
        assert len(findings_for(bad, KERNEL_PATH, "RPR010")) == 1

    def test_good_twin_threaded_dtype(self):
        good = """
        import numpy as np

        def kernel(blocks, value_dtype):
            for block in blocks:
                scratch = np.zeros(block.shape, dtype=value_dtype)
                scratch += block
        """
        assert findings_for(good, KERNEL_PATH, "RPR010") == []

    def test_good_twin_hoisted_allocation(self):
        good = """
        import numpy as np

        def kernel(blocks, shape):
            scratch = np.zeros(shape)
            for block in blocks:
                scratch += block
        """
        assert findings_for(good, KERNEL_PATH, "RPR010") == []

    def test_good_twin_zeros_like_inherits_dtype(self):
        good = """
        import numpy as np

        def kernel(blocks):
            for block in blocks:
                yield np.zeros_like(block)
        """
        assert findings_for(good, KERNEL_PATH, "RPR010") == []

    def test_astype_threaded_dtype_in_loop_silent(self):
        good = """
        import numpy as np

        def kernel(blocks, value_dtype):
            for block in blocks:
                yield block.astype(value_dtype, copy=False)
        """
        assert findings_for(good, KERNEL_PATH, "RPR010") == []

    def test_out_of_scope_module_silent(self):
        source = """
        import numpy as np

        def run(blocks):
            for block in blocks:
                scratch = np.zeros(block.shape)
                scratch += block
        """
        assert findings_for(source, PLAIN_PATH, "RPR010") == []

    def test_noqa_with_justification_suppresses_rpr010(self):
        source = """
        import numpy as np

        def kernel(blocks):
            for block in blocks:
                # accumulation is deliberately double precision
                scratch = np.zeros(block.shape)  # repro: noqa-RPR010
                scratch += block
        """
        assert findings_for(source, KERNEL_PATH, "RPR010") == []
        assert findings_for(source, KERNEL_PATH, "RPR007") == []
        assert suppressed_count(source, KERNEL_PATH) == 1

    def test_bare_noqa_on_rpr010_requires_justification(self):
        source = """
        import numpy as np

        def kernel(blocks):
            for block in blocks:
                scratch = np.zeros(block.shape)  # repro: noqa-RPR010
                scratch += block
        """
        assert findings_for(source, KERNEL_PATH, "RPR010") == []
        assert len(findings_for(source, KERNEL_PATH, "RPR007")) == 1


# ----------------------------------------------------------------------
# RPR011 — allocations inside the solver hot loops
# ----------------------------------------------------------------------
HOT_PATH = "src/repro/linalg/lsqr.py"


class TestHotLoopAllocation:
    def test_concatenate_in_iteration_loop_fires(self):
        bad = """
        import numpy as np

        def iterate(u, v, iter_lim):
            for _ in range(iter_lim):
                u = np.concatenate([u, v])
        """
        found = findings_for(bad, HOT_PATH, "RPR011")
        assert len(found) == 1
        assert "scratch buffer" in found[0].message

    def test_zeros_like_in_iteration_loop_fires(self):
        bad = """
        import numpy as np

        def iterate(u, iter_lim):
            for _ in range(iter_lim):
                w = np.zeros_like(u)
                u = u + w
        """
        assert len(findings_for(bad, HOT_PATH, "RPR011")) == 1

    def test_good_twin_scratch_reuse(self):
        good = """
        import numpy as np

        def iterate(u, v, iter_lim):
            scratch = np.empty_like(u)
            for _ in range(iter_lim):
                np.multiply(u, v, out=scratch)
                u = u - scratch
        """
        assert findings_for(good, HOT_PATH, "RPR011") == []

    def test_allocation_outside_loop_silent(self):
        good = """
        import numpy as np

        def setup(u, v):
            stacked = np.concatenate([u, v])
            return stacked
        """
        assert findings_for(good, HOT_PATH, "RPR011") == []

    def test_non_hot_module_silent(self):
        source = """
        import numpy as np

        def kernel(blocks, value_dtype):
            out = []
            for block in blocks:
                out.append(np.concatenate([block, block]))
            return out
        """
        assert findings_for(source, KERNEL_PATH, "RPR011") == []

    def test_noqa_with_justification_suppresses_rpr011(self):
        source = """
        import numpy as np

        def iterate(u, v, iter_lim):
            for _ in range(iter_lim):
                # restart path rebuilds the basis, once per breakdown
                u = np.concatenate([u, v])  # repro: noqa-RPR011
        """
        assert findings_for(source, HOT_PATH, "RPR011") == []
        assert findings_for(source, HOT_PATH, "RPR007") == []
        assert suppressed_count(source, HOT_PATH) == 1


# ----------------------------------------------------------------------
# RPR000 — parse failures report consistent locations
# ----------------------------------------------------------------------
class TestUnparsableSource:
    def test_syntax_error_location_is_zero_based_column(self):
        findings = findings_for("def broken(:\n    pass\n", CORE_PATH)
        (finding,) = findings
        assert finding.rule_id == "RPR000"
        assert finding.line == 1
        # ast columns are 0-based everywhere else; RPR000 must match
        assert 0 <= finding.col < len("def broken(:")

    def test_null_byte_source_reports_line_one_col_zero(self):
        findings, suppressed = lint_source("x = 1\x00\n", CORE_PATH)
        (finding,) = findings
        assert finding.rule_id == "RPR000"
        assert (finding.line, finding.col) == (1, 0)
        assert suppressed == 0

    def test_rpr000_location_identical_across_reporters(self):
        # the to_dict() payload (JSON reporter) and the location string
        # (text reporter) must agree on the same line/col
        findings, _ = lint_source("def broken(:\n", CORE_PATH)
        (finding,) = findings
        payload = finding.to_dict()
        assert payload["line"] == finding.line
        assert payload["col"] == finding.col
        assert finding.location == (
            f"{finding.path}:{payload['line']}:{payload['col']}"
        )
