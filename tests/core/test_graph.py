"""Unit tests for the graph-embedding view of LDA (Eqn 6/7)."""

import numpy as np
import pytest

from repro.core.graph import (
    between_class_scatter,
    between_scatter_via_graph,
    graph_laplacian,
    graph_responses,
    knn_affinity,
    lda_weight_matrix,
    scaled_indicator,
    semi_supervised_affinity,
    total_scatter,
    weight_matrix_eigenstructure,
    within_class_scatter,
)


@pytest.fixture
def labeled(rng):
    y = rng.integers(0, 3, 24)
    y[:3] = np.arange(3)
    X = rng.standard_normal((24, 6)) + 2.0 * y[:, None]
    return X, y


class TestWeightMatrix:
    def test_entries(self):
        y = np.array([0, 1, 0, 1, 1])
        W = lda_weight_matrix(y, 2)
        assert W[0, 2] == pytest.approx(1.0 / 2)   # class 0 has 2 members
        assert W[1, 3] == pytest.approx(1.0 / 3)   # class 1 has 3 members
        assert W[0, 1] == 0.0
        assert np.allclose(W, W.T)

    def test_row_sums_are_one(self, labeled):
        X, y = labeled
        W = lda_weight_matrix(y, 3)
        assert np.allclose(W.sum(axis=1), 1.0)

    def test_rank_equals_classes(self, labeled):
        _, y = labeled
        W = lda_weight_matrix(y, 3)
        assert np.linalg.matrix_rank(W) == 3

    def test_factorization_w_equals_eet(self, labeled):
        _, y = labeled
        W = lda_weight_matrix(y, 3)
        E = scaled_indicator(y, 3)
        assert np.allclose(E @ E.T, W, atol=1e-12)

    def test_eigenstructure(self, labeled):
        _, y = labeled
        W = lda_weight_matrix(y, 3)
        eigvals, eigvecs = weight_matrix_eigenstructure(y, 3)
        assert np.array_equal(eigvals, np.ones(3))
        assert np.allclose(W @ eigvecs, eigvecs, atol=1e-12)
        # those eigenvectors are orthonormal
        assert np.allclose(eigvecs.T @ eigvecs, np.eye(3), atol=1e-12)

    def test_trace_equals_c(self, labeled):
        _, y = labeled
        assert np.trace(lda_weight_matrix(y, 3)) == pytest.approx(3.0)


class TestScatterIdentities:
    def test_eqn7_graph_factorization(self, labeled):
        X, y = labeled
        direct = between_class_scatter(X, y, 3)
        via_graph = between_scatter_via_graph(X, y, 3)
        assert np.allclose(direct, via_graph, atol=1e-8)

    def test_st_equals_sb_plus_sw(self, labeled):
        X, y = labeled
        St = total_scatter(X)
        Sb = between_class_scatter(X, y, 3)
        Sw = within_class_scatter(X, y, 3)
        assert np.allclose(St, Sb + Sw, atol=1e-8)

    def test_sb_rank_bounded_by_c_minus_1(self, labeled):
        X, y = labeled
        Sb = between_class_scatter(X, y, 3)
        assert np.linalg.matrix_rank(Sb, tol=1e-8) <= 2

    def test_scatters_are_psd(self, labeled):
        X, y = labeled
        for S in (
            between_class_scatter(X, y, 3),
            within_class_scatter(X, y, 3),
            total_scatter(X),
        ):
            eigvals = np.linalg.eigvalsh(S)
            assert eigvals.min() > -1e-8

    def test_single_point_classes(self):
        X = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        y = np.array([0, 1, 2])
        Sw = within_class_scatter(X, y, 3)
        assert np.allclose(Sw, 0.0)


class TestGeneralizedGraphs:
    def test_knn_symmetric_binary(self, rng):
        X = rng.standard_normal((20, 4))
        W = knn_affinity(X, n_neighbors=3)
        assert np.allclose(W, W.T)
        assert set(np.unique(W)) <= {0.0, 1.0}
        assert np.all(np.diag(W) == 0.0)

    def test_knn_heat_weights_in_unit_interval(self, rng):
        X = rng.standard_normal((15, 3))
        W = knn_affinity(X, n_neighbors=4, mode="heat")
        assert W.max() <= 1.0 and W.min() >= 0.0
        assert (W > 0).sum() >= 15 * 4  # at least k entries per row

    def test_knn_invalid_neighbors(self, rng):
        X = rng.standard_normal((5, 2))
        with pytest.raises(ValueError):
            knn_affinity(X, n_neighbors=5)
        with pytest.raises(ValueError):
            knn_affinity(X, n_neighbors=0)

    def test_knn_unknown_mode(self, rng):
        with pytest.raises(ValueError):
            knn_affinity(rng.standard_normal((6, 2)), 2, mode="cubic")

    def test_semi_supervised_blends(self, rng):
        X = rng.standard_normal((12, 3))
        y = np.array([0, 1, -1, -1, 0, 1, -1, -1, 0, 1, -1, -1])
        W = semi_supervised_affinity(X, y, 2, n_neighbors=2)
        knn_only = knn_affinity(X, n_neighbors=2)
        # supervised pairs gained weight on top of the kNN graph
        assert W[0, 4] > knn_only[0, 4]
        assert np.allclose(W, W.T)

    def test_laplacian_null_vector(self, rng):
        X = rng.standard_normal((10, 3))
        W = knn_affinity(X, n_neighbors=3)
        L = graph_laplacian(W)
        assert np.allclose(L @ np.ones(10), 0.0, atol=1e-10)

    def test_normalized_laplacian_psd(self, rng):
        X = rng.standard_normal((10, 3))
        W = knn_affinity(X, n_neighbors=3)
        L = graph_laplacian(W, normalized=True)
        eigvals = np.linalg.eigvalsh(0.5 * (L + L.T))
        assert eigvals.min() > -1e-8

    def test_graph_responses_on_lda_graph_match_indicator_span(self, labeled):
        X, y = labeled
        W = lda_weight_matrix(y, 3)
        R = graph_responses(W, n_components=2)
        # responses must lie in the class-indicator span: piecewise
        # constant per class
        for k in range(3):
            rows = R[y == k]
            assert np.allclose(rows, rows[0], atol=1e-6)
