"""Numerical verification of the paper's theoretical results.

- **Theorem 1**: if ``W ȳ = λ ȳ`` and ``X̄ a = ȳ`` then ``a`` solves the
  LDA eigenproblem ``X̄ᵀWX̄ a = λ X̄ᵀX̄ a`` with the same eigenvalue.
- **Theorem 2 / Corollary 3**: as α → 0, SRDA's projections become LDA
  eigenvectors; with linearly independent samples SRDA's embedding
  collapses each class to a point and coincides with LDA's.
"""

import numpy as np
import pytest

from repro.baselines.lda import LDA
from repro.core.graph import lda_weight_matrix
from repro.core.responses import generate_responses
from repro.core.srda import SRDA


def lda_residual(X_centered, W, a, lam):
    """‖X̄ᵀWX̄ a − λ X̄ᵀX̄ a‖ — zero iff (a, λ) solves Eqn 8."""
    left = X_centered.T @ (W @ (X_centered @ a))
    right = lam * (X_centered.T @ (X_centered @ a))
    return np.linalg.norm(left - right)


class TestTheorem1:
    def test_exact_solution_of_linear_system_solves_eigenproblem(self, rng):
        # build a case where X̄ a = ȳ is exactly solvable: n > m,
        # independent samples
        m, n, c = 12, 30, 3
        X = rng.standard_normal((m, n))
        y = np.arange(m) % c
        X_centered = X - X.mean(axis=0)
        W = lda_weight_matrix(y, c)
        R = generate_responses(y, c)
        for j in range(c - 1):
            ybar = R[:, j]
            # ȳ is an eigenvector of W with eigenvalue 1
            assert np.allclose(W @ ybar, ybar, atol=1e-10)
            # solve X̄ a = ȳ (min-norm; exact since rank(X̄) = m - 1 and
            # ȳ ⊥ 1 puts it in the row space)
            a = np.linalg.lstsq(X_centered, ybar, rcond=None)[0]
            assert np.allclose(X_centered @ a, ybar, atol=1e-8)
            # then a solves the LDA eigenproblem with λ = 1
            assert lda_residual(X_centered, W, a, 1.0) < 1e-8

    def test_random_vector_does_not_solve_eigenproblem(self, rng):
        # sanity: the residual test actually discriminates
        m, n, c = 12, 30, 3
        X = rng.standard_normal((m, n))
        y = np.arange(m) % c
        X_centered = X - X.mean(axis=0)
        W = lda_weight_matrix(y, c)
        a = rng.standard_normal(n)
        assert lda_residual(X_centered, W, a, 1.0) > 1e-3


class TestCorollary3:
    """n > m with independent samples: SRDA(α→0) ≡ LDA."""

    @pytest.fixture
    def problem(self, rng):
        m, n, c = 16, 50, 4
        X = rng.standard_normal((m, n))
        y = np.arange(m) % c
        return X, y, c

    def test_classes_collapse_to_points(self, problem):
        X, y, c = problem
        Z = SRDA(alpha=0.0, solver="normal").fit_transform(X, y)
        for k in range(c):
            rows = Z[y == k]
            assert np.abs(rows - rows[0]).max() < 1e-6

    def test_lda_classes_also_collapse(self, problem):
        X, y, c = problem
        Z = LDA().fit(X, y).transform(X)
        for k in range(c):
            rows = Z[y == k]
            assert np.abs(rows - rows[0]).max() < 1e-6

    def test_srda_embedding_matches_lda_geometry(self, problem):
        # both embeddings are bases of the same discriminant structure;
        # compare the between-class geometry via pairwise centroid
        # distance *ratios* (embeddings may differ by a linear map, but
        # at the collapse point both separate classes perfectly and
        # class-point configurations are full-rank simplices).
        X, y, c = problem
        Z_srda = SRDA(alpha=0.0, solver="normal").fit_transform(X, y)
        Z_lda = LDA().fit(X, y).transform(X)
        # classification agrees exactly on training data
        assert SRDA(alpha=0.0, solver="normal").fit(X, y).score(X, y) == 1.0
        assert LDA().fit(X, y).score(X, y) == 1.0
        # both embeddings have rank c-1 (non-degenerate simplex)
        assert np.linalg.matrix_rank(Z_srda - Z_srda.mean(0), tol=1e-6) == c - 1
        assert np.linalg.matrix_rank(Z_lda - Z_lda.mean(0), tol=1e-6) == c - 1

    def test_alpha_continuity(self, problem):
        # projections converge as alpha decreases (Theorem 2): distance
        # between successive solutions shrinks
        X, y, _ = problem
        solutions = [
            SRDA(alpha=alpha, solver="normal").fit(X, y).components_
            for alpha in (1e-2, 1e-5, 1e-8, 0.0)
        ]
        gaps = [
            np.linalg.norm(solutions[i] - solutions[-1])
            for i in range(len(solutions) - 1)
        ]
        assert gaps[0] > gaps[1] > gaps[2]
        assert gaps[2] < 1e-4


class TestRegularizationBehavior:
    def test_alpha_zero_overfits_small_sample(self, rng):
        """The motivation for regularization: α = 0 memorizes, α > 0
        generalizes better on a noisy undersampled problem."""
        n, c = 80, 4
        centers = 1.5 * rng.standard_normal((c, n))

        def sample(per_class):
            X = np.vstack(
                [
                    centers[k] + 2.0 * rng.standard_normal((per_class, n))
                    for k in range(c)
                ]
            )
            return X, np.repeat(np.arange(c), per_class)

        X_train, y_train = sample(4)   # 16 samples, 80 dims
        X_test, y_test = sample(60)
        scores = {}
        for alpha in (0.0, 1.0):
            model = SRDA(alpha=alpha, solver="normal").fit(X_train, y_train)
            assert model.score(X_train, y_train) == 1.0
            scores[alpha] = model.score(X_test, y_test)
        assert scores[1.0] >= scores[0.0]
