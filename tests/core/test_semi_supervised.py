"""Unit tests for the semi-supervised SRDA extension."""

import numpy as np
import pytest

from repro.core.semi_supervised import SemiSupervisedSRDA
from repro.core.srda import SRDA


@pytest.fixture
def blobs(rng):
    centers = 6.0 * rng.standard_normal((3, 12))
    y = np.repeat(np.arange(3), 30)
    X = centers[y] + rng.standard_normal((90, 12))
    return X, y


def mask_labels(y, keep_per_class, rng):
    """Return a copy of y with all but `keep_per_class` per class = -1."""
    partial = np.full(y.shape, -1, dtype=np.int64)
    for label in np.unique(y):
        members = np.flatnonzero(y == label)
        keep = rng.permutation(members)[:keep_per_class]
        partial[keep] = label
    return partial


class TestSemiSupervisedSRDA:
    def test_fully_labeled_close_to_srda_predictions(self, blobs):
        X, y = blobs
        semi = SemiSupervisedSRDA(alpha=1.0, supervised_weight=10.0).fit(X, y)
        supervised = SRDA(alpha=1.0).fit(X, y)
        agreement = np.mean(semi.predict(X) == supervised.predict(X))
        assert agreement > 0.95

    def test_partial_labels_beat_tiny_supervised_fit(self, blobs, rng):
        """The point of the method: unlabeled structure helps when only
        a couple of labels per class exist."""
        X, y = blobs
        partial = mask_labels(y, keep_per_class=2, rng=rng)
        labeled = partial != -1

        semi = SemiSupervisedSRDA(alpha=1.0, n_neighbors=7).fit(X, partial)
        tiny = SRDA(alpha=1.0).fit(X[labeled], y[labeled])
        assert semi.score(X, y) >= tiny.score(X, y) - 0.05

    def test_embedding_shape(self, blobs, rng):
        X, y = blobs
        partial = mask_labels(y, 3, rng)
        model = SemiSupervisedSRDA().fit(X, partial)
        assert model.transform(X).shape == (90, 2)

    def test_explicit_components(self, blobs, rng):
        X, y = blobs
        partial = mask_labels(y, 3, rng)
        model = SemiSupervisedSRDA(n_components=1).fit(X, partial)
        assert model.transform(X).shape == (90, 1)

    def test_lsqr_solver_close_to_normal(self, blobs, rng):
        X, y = blobs
        partial = mask_labels(y, 5, rng)
        a = SemiSupervisedSRDA(alpha=1.0, solver="normal").fit(X, partial)
        b = SemiSupervisedSRDA(
            alpha=1.0, solver="lsqr", max_iter=500, tol=1e-13
        ).fit(X, partial)
        assert np.allclose(a.components_, b.components_, atol=1e-5)

    def test_predictions_only_use_known_classes(self, blobs, rng):
        X, y = blobs
        partial = mask_labels(y, 4, rng)
        model = SemiSupervisedSRDA().fit(X, partial)
        assert set(model.predict(X)) <= set(np.unique(y))

    def test_no_labels_rejected(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="labeled"):
            SemiSupervisedSRDA().fit(X, np.full(90, -1))

    def test_one_class_rejected(self, blobs, rng):
        X, y = blobs
        partial = np.full(90, -1, dtype=np.int64)
        partial[:5] = 0
        with pytest.raises(ValueError, match="2 classes"):
            SemiSupervisedSRDA().fit(X, partial)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SemiSupervisedSRDA(alpha=-1.0)
        with pytest.raises(ValueError):
            SemiSupervisedSRDA(solver="cg")

    def test_label_length_mismatch(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            SemiSupervisedSRDA().fit(X, y[:-1])
