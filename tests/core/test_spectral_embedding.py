"""Unit tests for the unsupervised spectral-regression embedding."""

import numpy as np
import pytest

from repro.core.base import NotFittedError
from repro.core.spectral_embedding import SpectralRegressionEmbedding


@pytest.fixture
def clusters(rng):
    """Three well-separated Gaussian clusters (unlabeled)."""
    centers = 8.0 * rng.standard_normal((3, 6))
    y = np.repeat(np.arange(3), 25)
    X = centers[y] + 0.8 * rng.standard_normal((75, 6))
    return X, y


class TestSpectralRegressionEmbedding:
    def test_embedding_shape(self, clusters):
        X, _ = clusters
        Z = SpectralRegressionEmbedding(n_components=2,
                                        n_neighbors=6).fit_transform(X)
        assert Z.shape == (75, 2)

    def test_clusters_separate_without_labels(self, clusters):
        X, y = clusters
        Z = SpectralRegressionEmbedding(n_components=2,
                                        n_neighbors=6).fit_transform(X)
        centroids = np.vstack([Z[y == k].mean(axis=0) for k in range(3)])
        within = np.mean([Z[y == k].std() for k in range(3)])
        between = np.linalg.norm(
            centroids[:, None] - centroids[None, :], axis=-1
        ).max()
        assert between > 3.0 * within

    def test_out_of_sample_extension(self, clusters, rng):
        X, y = clusters
        model = SpectralRegressionEmbedding(n_components=2,
                                            n_neighbors=6).fit(X)
        # unseen points near a cluster land near that cluster's embedding
        Z_train = model.transform(X)
        new_point = X[y == 0].mean(axis=0) + 0.1 * rng.standard_normal(6)
        z = model.transform(new_point[None, :])[0]
        cluster0 = Z_train[y == 0].mean(axis=0)
        others = [Z_train[y == k].mean(axis=0) for k in (1, 2)]
        assert np.linalg.norm(z - cluster0) < min(
            np.linalg.norm(z - other) for other in others
        )

    def test_solvers_agree(self, clusters):
        X, _ = clusters
        a = SpectralRegressionEmbedding(n_components=2, n_neighbors=6,
                                        solver="normal").fit(X)
        b = SpectralRegressionEmbedding(n_components=2, n_neighbors=6,
                                        solver="lsqr", max_iter=500,
                                        tol=1e-13).fit(X)
        assert np.allclose(a.components_, b.components_, atol=1e-5)

    def test_binary_affinity_mode(self, clusters):
        X, _ = clusters
        model = SpectralRegressionEmbedding(n_components=2, n_neighbors=6,
                                            affinity="binary").fit(X)
        assert np.all(np.isfinite(model.components_))

    def test_transform_is_affine(self, clusters):
        X, _ = clusters
        model = SpectralRegressionEmbedding(n_components=2,
                                            n_neighbors=6).fit(X)
        Z = model.transform(X)
        assert np.allclose(
            Z, X @ model.components_ + model.intercept_, atol=1e-12
        )

    def test_validation(self, clusters, rng):
        with pytest.raises(ValueError):
            SpectralRegressionEmbedding(n_components=0)
        with pytest.raises(ValueError):
            SpectralRegressionEmbedding(alpha=-1.0)
        with pytest.raises(ValueError):
            SpectralRegressionEmbedding(solver="cg")
        X = rng.standard_normal((4, 3))
        with pytest.raises(ValueError, match="n_components"):
            SpectralRegressionEmbedding(n_components=4, n_neighbors=2).fit(X)

    def test_unfitted(self, rng):
        with pytest.raises(NotFittedError):
            SpectralRegressionEmbedding().transform(
                rng.standard_normal((2, 3))
            )

    def test_lanczos_matches_dense_responses(self, rng):
        """The Lanczos-based responses must match the dense eigensolve
        path used by graph_responses.  Uses a *connected* graph — on a
        disconnected one the top eigenvalue is degenerate (one per
        component) and the two solvers may legitimately return
        different bases of the same eigenspace."""
        from repro.core.graph import graph_responses, knn_affinity

        X = rng.standard_normal((60, 4))  # one cloud → connected kNN graph
        W = knn_affinity(X, n_neighbors=6, mode="heat")
        dense = graph_responses(W, n_components=2)
        model = SpectralRegressionEmbedding(n_components=2, n_neighbors=6)
        lanczos = model._graph_responses_lanczos(W)
        # same subspace up to sign/rotation: compare projections
        P_dense = dense @ np.linalg.pinv(dense)
        P_lanczos = lanczos @ np.linalg.pinv(lanczos)
        assert np.abs(P_dense - P_lanczos).max() < 1e-6
