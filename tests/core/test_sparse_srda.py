"""Unit tests for the sparse-projection SRDA variant."""

import numpy as np
import pytest

from repro.core.sparse_srda import SparseSRDA
from repro.core.srda import SRDA
from repro.linalg.sparse import CSRMatrix


@pytest.fixture
def feature_selection_problem(rng):
    """3 classes separated only through the first 6 of 46 features."""
    c, per_class, informative, noise = 3, 25, 6, 40
    centers = np.zeros((c, informative + noise))
    centers[:, :informative] = 4.0 * rng.standard_normal((c, informative))
    y = np.repeat(np.arange(c), per_class)
    X = centers[y] + rng.standard_normal((c * per_class, informative + noise))
    return X, y, informative


class TestSparseSRDA:
    def test_projections_are_sparse(self, feature_selection_problem):
        X, y, _ = feature_selection_problem
        model = SparseSRDA(alpha=2.0, l1_ratio=0.95).fit(X, y)
        assert model.sparsity_ > 0.5
        assert model.components_.shape == (X.shape[1], 2)

    def test_selects_informative_features(self, feature_selection_problem):
        X, y, informative = feature_selection_problem
        model = SparseSRDA(alpha=2.0, l1_ratio=0.95).fit(X, y)
        selected = model.selected_features()
        assert selected.size > 0
        assert np.all(selected < informative)

    def test_classifies_despite_sparsity(self, feature_selection_problem):
        X, y, _ = feature_selection_problem
        model = SparseSRDA(alpha=2.0, l1_ratio=0.95).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_ridge_limit_matches_srda(self, small_classification):
        """l1_ratio = 0 must agree with SRDA's centered normal path
        (both solve the same ridge problem)."""
        X, y = small_classification
        sparse_model = SparseSRDA(alpha=1.0, l1_ratio=0.0, max_iter=5000,
                                  tol=1e-12).fit(X, y)
        srda = SRDA(alpha=1.0, solver="normal").fit(X, y)
        assert np.allclose(
            sparse_model.components_, srda.components_, atol=1e-6
        )
        assert np.allclose(sparse_model.intercept_, srda.intercept_, atol=1e-6)

    def test_sparsity_grows_with_alpha(self, feature_selection_problem):
        X, y, _ = feature_selection_problem
        sparsities = [
            SparseSRDA(alpha=alpha, l1_ratio=1.0).fit(X, y).sparsity_
            for alpha in (0.1, 1.0, 5.0)
        ]
        assert sparsities[0] <= sparsities[1] <= sparsities[2]

    def test_sparse_input_runs(self, sparse_classification):
        S, dense, y = sparse_classification
        model = SparseSRDA(alpha=0.5, l1_ratio=0.9).fit(S, y)
        assert model.score(S, y) > 0.8
        # transform consistent across representations
        assert np.allclose(
            model.transform(S), model.transform(dense), atol=1e-10
        )

    def test_iteration_telemetry(self, small_classification):
        X, y = small_classification
        model = SparseSRDA(alpha=1.0).fit(X, y)
        assert len(model.n_iter_) == 2
        assert all(n >= 1 for n in model.n_iter_)

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseSRDA(alpha=-1.0)
        with pytest.raises(ValueError):
            SparseSRDA(l1_ratio=2.0)

    def test_unfitted(self, rng):
        from repro.core.base import NotFittedError

        with pytest.raises(NotFittedError):
            SparseSRDA().transform(rng.standard_normal((2, 3)))
        with pytest.raises(NotFittedError):
            SparseSRDA().selected_features()
