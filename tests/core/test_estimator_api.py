"""The shared estimator protocol: get/set params, clone, deprecations.

Parametrized over :func:`repro.all_estimators`, so every estimator that
joins the registry is automatically held to the contract.
"""

import inspect
import warnings

import numpy as np
import pytest

import repro
from repro import IDRQR, SRDA, ReproDeprecationWarning, all_estimators, clone
from repro.baselines.lda import ScatterLDA
from repro.core.estimator import ReproEstimator
from repro.core.solver_config import SolverConfig

REGISTRY = all_estimators()

#: Non-default values per parameter name, used to prove that set_params
#: and clone carry values through (defaults would vacuously pass).
OVERRIDES = {
    "alpha": 2.5,
    "max_iter": 7,
    "tol": 1e-6,
    "n_components": 2,
}


def estimator_classes():
    return [
        pytest.param(loader, id=name) for name, loader in REGISTRY.items()
    ]


@pytest.mark.parametrize("loader", estimator_classes())
class TestProtocolContract:
    def test_is_repro_estimator(self, loader):
        assert issubclass(loader(), ReproEstimator)

    def test_params_mirror_constructor_signature(self, loader):
        cls = loader()
        estimator = cls()
        params = estimator.get_params()
        signature = inspect.signature(cls.__init__)
        expected = {
            name
            for name in signature.parameters
            if name != "self" and name not in cls._deprecated_params
        }
        assert set(params) == expected

    def test_deprecated_names_hidden_from_get_params(self, loader):
        cls = loader()
        for old in cls._deprecated_params:
            assert old not in cls().get_params()

    def test_get_set_round_trip(self, loader):
        estimator = loader()()
        params = estimator.get_params()
        changed = {
            name: OVERRIDES[name]
            for name in params
            if name in OVERRIDES
        }
        estimator.set_params(**changed)
        after = estimator.get_params()
        for name, value in changed.items():
            assert after[name] == value
        untouched = set(params) - set(changed)
        for name in untouched:
            assert after[name] == params[name]

    def test_clone_copies_params_not_fitted_state(self, loader):
        estimator = loader()()
        overrides = {
            name: OVERRIDES[name]
            for name in estimator.get_params()
            if name in OVERRIDES
        }
        estimator.set_params(**overrides)
        copy = clone(estimator)
        assert type(copy) is type(estimator)
        assert copy is not estimator
        assert copy.get_params() == estimator.get_params()
        assert copy.fit_report_ is None

    def test_method_clone_matches_function(self, loader):
        estimator = loader()()
        assert estimator.clone().get_params() == clone(
            estimator
        ).get_params()

    def test_set_params_rejects_unknown_names(self, loader):
        estimator = loader()()
        with pytest.raises(ValueError, match="invalid parameter"):
            estimator.set_params(definitely_not_a_parameter=1)

    def test_set_params_empty_is_noop(self, loader):
        estimator = loader()()
        assert estimator.set_params() is estimator


class TestRegistry:
    def test_registry_covers_public_estimators(self):
        exported = {
            name
            for name in repro.__all__
            if name[0].isupper()
            and isinstance(getattr(repro, name), type)
            and issubclass(getattr(repro, name), ReproEstimator)
            and getattr(repro, name) is not ReproEstimator
        }
        assert exported == set(REGISTRY)

    def test_loaders_resolve_to_exported_classes(self):
        for name, loader in REGISTRY.items():
            assert loader() is getattr(repro, name)


#: Estimators whose ``fit`` takes no labels.
UNSUPERVISED = {"PCA", "SpectralRegressionEmbedding"}


def _fit(name, X, y):
    estimator = REGISTRY[name]()()
    return estimator.fit(X) if name in UNSUPERVISED else estimator.fit(X, y)


@pytest.mark.parametrize("name", sorted(REGISTRY))
class TestFittedState:
    """Satellite of the serving registry: ``is_fitted`` must be accurate
    and ``clone`` must drop fitted state on *every* estimator."""

    def test_is_fitted_flips_on_fit(self, name, small_classification):
        estimator = REGISTRY[name]()()
        assert not estimator.is_fitted()
        assert estimator.fitted_attributes() == {}
        X, y = small_classification
        fitted = _fit(name, X, y)
        assert fitted.is_fitted()

    def test_clone_drops_every_fitted_marker(
        self, name, small_classification
    ):
        X, y = small_classification
        fitted = _fit(name, X, y)
        copy = clone(fitted)
        assert not copy.is_fitted()
        assert copy.fit_report_ is None
        for marker in fitted.fitted_attributes():
            assert getattr(copy, marker, None) is None, marker
        # the clone is a working estimator
        refit = (
            copy.fit(X) if name in UNSUPERVISED else copy.fit(X, y)
        )
        assert refit.is_fitted()


@pytest.mark.parametrize("name", sorted(REGISTRY))
class TestCopyability:
    """Fitted estimators must survive ``deepcopy`` and pickle — the
    serving layer deep-copies the active model before ``partial_fit``
    so the served original is never mutated.  Live tracer handles
    (which hold thread locks) are dropped and restored as ``None``."""

    def test_fitted_deepcopy_round_trip(self, name, small_classification):
        import copy as copy_module

        X, y = small_classification
        fitted = _fit(name, X, y)
        duplicate = copy_module.deepcopy(fitted)
        assert duplicate.is_fitted()
        assert getattr(duplicate, "tracer_", None) is None
        np.testing.assert_array_equal(
            duplicate.transform(X.astype(np.float32)),
            fitted.transform(X.astype(np.float32)),
        )

    def test_fitted_pickle_round_trip(self, name, small_classification):
        import pickle

        X, y = small_classification
        fitted = _fit(name, X, y)
        restored = pickle.loads(pickle.dumps(fitted))
        assert restored.is_fitted()
        np.testing.assert_array_equal(
            restored.transform(X.astype(np.float32)),
            fitted.transform(X.astype(np.float32)),
        )


class TestSRDAClone:
    def test_clone_drops_fitted_attributes(self, small_classification):
        X, y = small_classification
        model = SRDA(alpha=2.0, config=SolverConfig(solver="normal")).fit(
            X, y
        )
        copy = clone(model)
        assert copy.components_ is None
        assert copy.fit_report_ is None
        assert copy.get_params()["alpha"] == 2.0
        copy.fit(X, y)  # the clone is a working estimator
        assert copy.components_ is not None

    def test_clone_preserves_trace_argument(self):
        model = SRDA(alpha=1.0, trace=True)
        assert clone(model).get_params()["trace"] is True


class TestRidgeSpellingRemoved:
    """The PR-4 ``ridge=`` deprecation cycle is complete: hard removal."""

    @pytest.mark.parametrize(
        "cls", [ScatterLDA, IDRQR], ids=["ScatterLDA", "IDRQR"]
    )
    def test_constructor_rejects_ridge(self, cls):
        with pytest.raises(TypeError, match="ridge"):
            cls(ridge=0.75)

    @pytest.mark.parametrize(
        "cls", [ScatterLDA, IDRQR], ids=["ScatterLDA", "IDRQR"]
    )
    def test_set_params_rejects_ridge(self, cls):
        with pytest.raises(ValueError, match="invalid parameter"):
            cls().set_params(ridge=0.25)

    @pytest.mark.parametrize(
        "cls", [ScatterLDA, IDRQR], ids=["ScatterLDA", "IDRQR"]
    )
    def test_alias_property_is_gone(self, cls):
        assert not hasattr(cls, "ridge")
        assert "ridge" not in cls._deprecated_params

    @pytest.mark.parametrize(
        "cls", [ScatterLDA, IDRQR], ids=["ScatterLDA", "IDRQR"]
    )
    def test_alpha_spelling_stays_silent(self, cls):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            estimator = cls(alpha=0.5)
            estimator.set_params(alpha=1.0)
            clone(estimator)
        assert estimator.alpha == 1.0

    def test_deprecation_warning_is_a_future_warning(self):
        assert issubclass(ReproDeprecationWarning, FutureWarning)


class TestSolverConfigAliases:
    """The folded fit-time knobs survive one cycle as thin aliases."""

    ALIASES = {
        "solver": "lsqr",
        "sketch": "sparse_sign",
        "sketch_size": 32,
        "sketch_seed": 7,
        "n_jobs": 2,
        "backend": "serial",
    }

    @pytest.mark.parametrize("name", sorted(ALIASES))
    def test_constructor_alias_warns_and_merges(self, name):
        with pytest.warns(ReproDeprecationWarning, match=f"{name}=.*config="):
            model = SRDA(**{name: self.ALIASES[name]})
        assert getattr(model.config, name) == self.ALIASES[name]
        assert name not in model.get_params()

    @pytest.mark.parametrize("name", sorted(ALIASES))
    def test_set_params_alias_warns_and_merges(self, name):
        model = SRDA()
        with pytest.warns(ReproDeprecationWarning):
            model.set_params(**{name: self.ALIASES[name]})
        assert getattr(model.config, name) == self.ALIASES[name]

    @pytest.mark.parametrize("name", sorted(ALIASES))
    def test_alias_reads_silently(self, name):
        model = SRDA(config=SolverConfig(**{name: self.ALIASES[name]}))
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            assert getattr(model, name) == self.ALIASES[name]

    def test_set_params_alias_preserves_other_fields(self):
        model = SRDA(config=SolverConfig(solver="lsqr", sketch_seed=5))
        with pytest.warns(ReproDeprecationWarning):
            model.set_params(sketch_size=16)
        assert model.config.solver == "lsqr"
        assert model.config.sketch_seed == 5
        assert model.config.sketch_size == 16

    def test_config_spelling_stays_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            model = SRDA(config=SolverConfig(solver="lsqr"))
            model.set_params(config=SolverConfig(solver="normal"))
            clone(model)
        assert model.config.solver == "normal"
