"""Unit tests for the shared estimator machinery."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.core.base import (
    LinearEmbedder,
    NotFittedError,
    as_dense,
    class_counts,
    encode_labels,
    validate_data,
)
from repro.linalg.sparse import CSRMatrix


class TestLabelEncoding:
    def test_integer_labels(self):
        classes, idx = encode_labels(np.array([3, 1, 3, 7]))
        assert np.array_equal(classes, [1, 3, 7])
        assert np.array_equal(idx, [1, 0, 1, 2])

    def test_string_labels(self):
        classes, idx = encode_labels(np.array(["b", "a", "b"]))
        assert np.array_equal(classes, ["a", "b"])
        assert np.array_equal(idx, [1, 0, 1])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            encode_labels(np.zeros((2, 2)))

    def test_class_counts(self):
        _, idx = encode_labels(np.array([0, 0, 1, 2, 2, 2]))
        assert np.array_equal(class_counts(idx, 3), [2, 1, 3])

    def test_class_counts_minlength(self):
        assert np.array_equal(class_counts(np.array([0, 0]), 3), [2, 0, 0])


class TestValidateData:
    def test_dense_passthrough(self, rng):
        X = rng.standard_normal((6, 3))
        y = np.array([0, 1, 0, 1, 0, 1])
        X_out, classes, idx = validate_data(X, y)
        assert np.array_equal(X_out, X)
        assert np.array_equal(classes, [0, 1])

    def test_sparse_not_densified(self, rng):
        X = CSRMatrix.from_dense(rng.standard_normal((4, 3)))
        X_out, _, _ = validate_data(X, np.array([0, 1, 0, 1]))
        assert X_out is X

    def test_scipy_sparse_not_densified(self, rng):
        X = sp.csr_matrix(rng.standard_normal((4, 3)))
        X_out, _, _ = validate_data(X, np.array([0, 1, 0, 1]))
        assert X_out is X

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError, match="samples"):
            validate_data(rng.standard_normal((4, 3)), np.zeros(5))

    def test_single_class_rejected(self, rng):
        with pytest.raises(ValueError, match="2 classes"):
            validate_data(rng.standard_normal((4, 3)), np.zeros(4))

    def test_rejects_3d(self, rng):
        with pytest.raises(ValueError):
            validate_data(rng.standard_normal((2, 3, 4)), np.array([0, 1]))

    def test_rejects_nan(self, rng):
        X = rng.standard_normal((4, 3))
        X[1, 2] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            validate_data(X, np.array([0, 1, 0, 1]))

    def test_rejects_inf(self, rng):
        X = rng.standard_normal((4, 3))
        X[0, 0] = np.inf
        with pytest.raises(ValueError, match="infinity"):
            validate_data(X, np.array([0, 1, 0, 1]))

    def test_rejects_nan_in_sparse(self, rng):
        dense = rng.standard_normal((4, 3))
        dense[dense < 0] = 0.0
        dense[0, 0] = np.nan
        X = CSRMatrix.from_dense(dense)
        with pytest.raises(ValueError, match="NaN"):
            validate_data(X, np.array([0, 1, 0, 1]))


class TestAsDense:
    def test_our_csr(self, rng):
        dense = rng.standard_normal((3, 4))
        assert np.allclose(as_dense(CSRMatrix.from_dense(dense)), dense)

    def test_scipy(self, rng):
        dense = rng.standard_normal((3, 4))
        assert np.allclose(as_dense(sp.csr_matrix(dense)), dense)

    def test_ndarray_passthrough(self, rng):
        dense = rng.standard_normal((3, 4))
        assert np.array_equal(as_dense(dense), dense)


class _FixedEmbedder(LinearEmbedder):
    """Trivial embedder projecting onto given components (for testing)."""

    def fit(self, X, y):
        X, classes, y_idx = validate_data(X, y)
        self.classes_ = classes
        self.components_ = np.eye(X.shape[1])[:, :2]
        self.intercept_ = np.zeros(2)
        self._store_centroids(self.transform(X), y_idx)
        return self


class TestLinearEmbedder:
    def test_nearest_centroid_predict(self, rng):
        X = np.vstack([rng.standard_normal((10, 4)),
                       rng.standard_normal((10, 4)) + np.array([5, 5, 0, 0])])
        y = np.repeat([0, 1], 10)
        model = _FixedEmbedder().fit(X, y)
        assert model.score(X, y) == 1.0

    def test_intercept_applied(self, rng):
        X = rng.standard_normal((6, 4))
        y = np.array([0, 1] * 3)
        model = _FixedEmbedder().fit(X, y)
        model.intercept_ = np.array([10.0, -10.0])
        Z = model.transform(X)
        assert np.allclose(Z, X[:, :2] + model.intercept_)

    def test_not_fitted(self, rng):
        with pytest.raises(NotFittedError):
            _FixedEmbedder().transform(rng.standard_normal((2, 4)))

    def test_transform_rejects_1d(self, rng):
        model = _FixedEmbedder().fit(
            rng.standard_normal((6, 4)), np.array([0, 1] * 3)
        )
        with pytest.raises(ValueError):
            model.transform(np.ones(4))
