"""Unit tests for response generation (Eqn 15/16)."""

import numpy as np
import pytest

from repro.core.graph import lda_weight_matrix
from repro.core.responses import (
    generate_responses,
    indicator_matrix,
    response_table,
    validate_responses,
)


def balanced_labels(n_classes, per_class):
    return np.repeat(np.arange(n_classes), per_class)


class TestIndicatorMatrix:
    def test_one_hot_structure(self):
        y = np.array([0, 2, 1, 0])
        Y = indicator_matrix(y, 3)
        expected = np.array(
            [[1, 0, 0], [0, 0, 1], [0, 1, 0], [1, 0, 0]], dtype=float
        )
        assert np.array_equal(Y, expected)

    def test_rows_sum_to_one(self, rng):
        y = rng.integers(0, 4, 30)
        assert np.array_equal(indicator_matrix(y, 4).sum(axis=1), np.ones(30))

    def test_out_of_range_label(self):
        with pytest.raises(ValueError):
            indicator_matrix(np.array([0, 5]), 3)


class TestGenerateResponses:
    def test_shape(self):
        y = balanced_labels(4, 6)
        assert generate_responses(y, 4).shape == (24, 3)

    def test_orthogonal_to_ones(self):
        y = balanced_labels(5, 4)
        R = generate_responses(y, 5)
        assert np.abs(R.sum(axis=0)).max() < 1e-10

    def test_orthonormal_columns(self):
        y = balanced_labels(5, 4)
        R = generate_responses(y, 5)
        assert np.allclose(R.T @ R, np.eye(4), atol=1e-10)

    def test_eigenvectors_of_w_with_eigenvalue_one(self, rng):
        y = rng.integers(0, 4, 40)
        y[:4] = np.arange(4)
        R = generate_responses(y, 4)
        W = lda_weight_matrix(y, 4)
        assert np.allclose(W @ R, R, atol=1e-10)

    def test_piecewise_constant_on_classes(self, rng):
        y = rng.integers(0, 3, 25)
        y[:3] = np.arange(3)
        R = generate_responses(y, 3)
        table = response_table(R, y, 3)  # raises if not piecewise constant
        assert table.shape == (3, 2)

    def test_unbalanced_classes(self):
        y = np.array([0] * 10 + [1] * 2 + [2] * 5)
        R = generate_responses(y, 3)
        validate_responses(R, y)

    def test_two_classes_single_response(self):
        y = np.array([0, 0, 1, 1, 1])
        R = generate_responses(y, 2)
        assert R.shape == (5, 1)
        # the single response separates the classes by sign
        signs = np.sign(R[:, 0])
        assert len(set(signs[y == 0])) == 1
        assert len(set(signs[y == 1])) == 1
        assert signs[0] != signs[2]

    def test_missing_class_rejected(self):
        y = np.array([0, 0, 2, 2])  # class 1 absent
        with pytest.raises(ValueError, match="no samples"):
            generate_responses(y, 3)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            generate_responses(np.zeros(5, dtype=int), 1)

    def test_deterministic(self):
        y = balanced_labels(3, 7)
        assert np.array_equal(generate_responses(y, 3), generate_responses(y, 3))

    def test_random_order_spans_same_space(self, rng):
        y = balanced_labels(4, 5)
        R1 = generate_responses(y, 4)
        R2 = generate_responses(y, 4, rng=np.random.default_rng(7))
        # different bases of the same subspace: projections agree
        P1 = R1 @ R1.T
        P2 = R2 @ R2.T
        assert np.allclose(P1, P2, atol=1e-10)

    def test_permutation_equivariance(self, rng):
        y = balanced_labels(3, 6)
        perm = rng.permutation(len(y))
        R = generate_responses(y, 3)
        R_perm = generate_responses(y[perm], 3)
        assert np.allclose(R_perm, R[perm], atol=1e-10)


class TestValidationHelpers:
    def test_validate_rejects_bad_responses(self, rng):
        R = rng.standard_normal((10, 2))  # not orthogonal to ones
        with pytest.raises(ValueError, match="Eqn 16"):
            validate_responses(R, np.zeros(10, dtype=int))

    def test_response_table_rejects_non_constant(self, rng):
        y = np.array([0, 0, 1, 1])
        R = rng.standard_normal((4, 1))
        with pytest.raises(ValueError, match="piecewise"):
            response_table(R, y, 2)
