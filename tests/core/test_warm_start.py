"""Unit tests for SRDA's warm-started (incremental) refitting."""

import numpy as np
import pytest

from repro.core.srda import SRDA


@pytest.fixture
def stream(rng):
    """An initial batch plus a small increment from the same source."""
    centers = 3.0 * rng.standard_normal((4, 20))

    def batch(size, seed):
        r = np.random.default_rng(seed)
        y = np.concatenate([np.arange(4), r.integers(0, 4, size - 4)])
        X = centers[y] + r.standard_normal((size, 20))
        return X, y

    X0, y0 = batch(60, 1)
    X1, y1 = batch(12, 2)
    return (X0, y0), (np.vstack([X0, X1]), np.concatenate([y0, y1]))


class TestWarmStart:
    def test_warm_refit_converges_in_fewer_iterations(self, stream):
        (X0, y0), (X1, y1) = stream
        model = SRDA(alpha=1.0, solver="lsqr", max_iter=500, tol=1e-8,
                     warm_start=True)
        model.fit(X0, y0)
        cold_iters = sum(model.lsqr_iterations_)
        model.fit(X1, y1)  # warm refit on the grown dataset
        warm_iters = sum(model.lsqr_iterations_)
        cold = SRDA(alpha=1.0, solver="lsqr", max_iter=500, tol=1e-8)
        cold.fit(X1, y1)
        assert warm_iters < sum(cold.lsqr_iterations_)
        assert warm_iters < cold_iters

    def test_warm_refit_matches_cold_solution(self, stream):
        (X0, y0), (X1, y1) = stream
        warm = SRDA(alpha=1.0, solver="lsqr", max_iter=1000, tol=1e-13,
                    warm_start=True)
        warm.fit(X0, y0)
        warm.fit(X1, y1)
        cold = SRDA(alpha=1.0, solver="lsqr", max_iter=1000, tol=1e-13)
        cold.fit(X1, y1)
        assert np.allclose(warm.components_, cold.components_, atol=1e-6)
        assert np.allclose(warm.intercept_, cold.intercept_, atol=1e-6)

    def test_incompatible_shapes_fall_back_to_cold(self, stream, rng):
        (X0, y0), _ = stream
        model = SRDA(alpha=1.0, solver="lsqr", max_iter=200, tol=1e-10,
                     warm_start=True)
        model.fit(X0, y0)
        # different feature count: warm start silently skipped
        X_new = rng.standard_normal((30, 7))
        y_new = np.arange(30) % 3
        model.fit(X_new, y_new)
        assert model.components_.shape == (7, 2)

    def test_warm_start_ignored_by_normal_solver(self, stream):
        (X0, y0), (X1, y1) = stream
        warm = SRDA(alpha=1.0, solver="normal", warm_start=True)
        warm.fit(X0, y0)
        warm.fit(X1, y1)
        cold = SRDA(alpha=1.0, solver="normal").fit(X1, y1)
        assert np.allclose(warm.components_, cold.components_, atol=1e-10)

    def test_warm_start_on_augmented_path(self, stream):
        (X0, y0), (X1, y1) = stream
        warm = SRDA(alpha=1.0, solver="lsqr", centering=False,
                    max_iter=500, tol=1e-8, warm_start=True)
        warm.fit(X0, y0)
        warm.fit(X1, y1)
        cold = SRDA(alpha=1.0, solver="lsqr", centering=False,
                    max_iter=500, tol=1e-8).fit(X1, y1)
        assert sum(warm.lsqr_iterations_) < sum(cold.lsqr_iterations_)
        assert np.allclose(warm.components_, cold.components_, atol=1e-4)

    def test_disabled_by_default(self, stream):
        (X0, y0), (X1, y1) = stream
        model = SRDA(alpha=1.0, solver="lsqr", max_iter=500, tol=1e-8)
        model.fit(X0, y0)
        first = sum(model.lsqr_iterations_)
        model.fit(X1, y1)
        second = sum(model.lsqr_iterations_)
        # no warm start: the refit pays full price (within LSQR noise)
        assert second >= first - 10
