"""Unit tests for the SRDA estimator."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.core.base import NotFittedError
from repro.core.srda import SRDA
from repro.linalg.sparse import CSRMatrix


class TestBasicBehavior:
    def test_fit_transform_shapes(self, small_classification):
        X, y = small_classification
        model = SRDA(alpha=1.0)
        Z = model.fit_transform(X, y)
        assert Z.shape == (X.shape[0], 2)  # c - 1 dimensions
        assert model.components_.shape == (X.shape[1], 2)
        assert model.intercept_.shape == (2,)

    def test_separable_data_classified_perfectly(self, small_classification):
        X, y = small_classification
        model = SRDA(alpha=1.0).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_predict_returns_original_labels(self, rng):
        X = rng.standard_normal((20, 5))
        X[10:] += 5.0
        y = np.array(["cat"] * 10 + ["dog"] * 10)
        model = SRDA(alpha=1.0).fit(X, y)
        assert set(model.predict(X)) <= {"cat", "dog"}
        assert model.score(X, y) == 1.0

    def test_unfitted_raises(self, rng):
        with pytest.raises(NotFittedError):
            SRDA().transform(rng.standard_normal((3, 4)))
        with pytest.raises(NotFittedError):
            SRDA().predict(rng.standard_normal((3, 4)))

    def test_transform_feature_mismatch(self, small_classification):
        X, y = small_classification
        model = SRDA().fit(X, y)
        with pytest.raises(ValueError):
            model.transform(np.ones((2, X.shape[1] + 1)))

    def test_two_class_problem(self, rng):
        X = np.vstack([rng.standard_normal((15, 6)),
                       rng.standard_normal((15, 6)) + 3.0])
        y = np.repeat([0, 1], 15)
        model = SRDA(alpha=0.5).fit(X, y)
        assert model.components_.shape == (6, 1)
        assert model.score(X, y) == 1.0

    def test_single_class_rejected(self, rng):
        with pytest.raises(ValueError):
            SRDA().fit(rng.standard_normal((5, 3)), np.zeros(5))

    def test_label_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            SRDA().fit(rng.standard_normal((5, 3)), np.zeros(4))


class TestParameters:
    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            SRDA(alpha=-1.0)

    def test_invalid_solver(self):
        with pytest.raises(ValueError):
            SRDA(solver="cg")

    def test_invalid_max_iter(self):
        with pytest.raises(ValueError):
            SRDA(max_iter=0)

    def test_alpha_controls_shrinkage(self, small_classification):
        # centered path penalizes exactly the projection vectors, so
        # their norm is monotone in alpha
        X, y = small_classification
        norms = [
            np.linalg.norm(
                SRDA(alpha=alpha, solver="normal").fit(X, y).components_
            )
            for alpha in (0.01, 1.0, 100.0)
        ]
        assert norms[0] > norms[1] > norms[2]

    def test_invalid_centering(self):
        with pytest.raises(ValueError):
            SRDA(centering="yes")

    def test_centering_resolution(self, small_classification, sparse_classification):
        X, y = small_classification
        assert SRDA().fit(X, y).centered_ is True
        S, _, ys = sparse_classification
        assert SRDA().fit(S, ys).centered_ is False

    def test_centered_normal_on_sparse_rejected(self, sparse_classification):
        S, _, y = sparse_classification
        with pytest.raises(ValueError, match="densifies"):
            SRDA(centering=True, solver="normal").fit(S, y)

    def test_sparse_implicit_centering_matches_dense_centering(
        self, sparse_classification
    ):
        # centering=True on sparse input runs through CenteringOperator
        # and must match explicit dense centering exactly
        S, dense, y = sparse_classification
        implicit = SRDA(
            alpha=1.0, centering=True, solver="lsqr", max_iter=500, tol=1e-14
        ).fit(S, y)
        explicit = SRDA(alpha=1.0, centering=True, solver="normal").fit(dense, y)
        assert np.allclose(
            implicit.components_, explicit.components_, atol=1e-6
        )
        assert np.allclose(implicit.intercept_, explicit.intercept_, atol=1e-6)

    def test_solver_used_reported(self, small_classification):
        X, y = small_classification
        assert SRDA(solver="normal").fit(X, y).solver_used_ == "normal"
        assert SRDA(solver="lsqr").fit(X, y).solver_used_ == "lsqr"
        # dense small input resolves to normal under auto
        assert SRDA(solver="auto").fit(X, y).solver_used_ == "normal"

    def test_auto_prefers_lsqr_for_sparse(self, sparse_classification):
        S, _, y = sparse_classification
        model = SRDA(solver="auto").fit(S, y)
        assert model.solver_used_ == "lsqr"

    def test_auto_switches_to_lsqr_above_size_limit(
        self, small_classification, monkeypatch
    ):
        import repro.core.srda as srda_module

        X, y = small_classification
        monkeypatch.setattr(srda_module, "_AUTO_NORMAL_LIMIT", 5)
        model = SRDA(solver="auto", max_iter=200, tol=1e-12).fit(X, y)
        assert model.solver_used_ == "lsqr"

    def test_lsqr_iteration_telemetry(self, small_classification):
        X, y = small_classification
        model = SRDA(solver="lsqr", max_iter=7, tol=0.0).fit(X, y)
        assert model.lsqr_iterations_ == [7, 7]
        normal = SRDA(solver="normal").fit(X, y)
        assert normal.lsqr_iterations_ is None


class TestSolverAgreement:
    def test_normal_vs_lsqr(self, small_classification):
        X, y = small_classification
        a = SRDA(alpha=1.0, solver="normal").fit(X, y)
        b = SRDA(alpha=1.0, solver="lsqr", max_iter=500, tol=1e-14).fit(X, y)
        assert np.allclose(a.components_, b.components_, atol=1e-6)
        assert np.allclose(a.intercept_, b.intercept_, atol=1e-6)

    def test_primal_vs_dual_normal_path(self, rng):
        # n > m exercises the dual (Eqn 21) branch; compare against the
        # naive primal system on centered data formed explicitly.
        m, n = 12, 30
        X = rng.standard_normal((m, n))
        y = np.arange(m) % 3
        model = SRDA(alpha=0.7, solver="normal").fit(X, y)
        from repro.core.responses import generate_responses

        mean = X.mean(axis=0)
        centered = X - mean
        R = generate_responses(y, 3)
        ref = np.linalg.solve(
            centered.T @ centered + 0.7 * np.eye(n), centered.T @ R
        )
        assert np.allclose(model.components_, ref, atol=1e-8)
        assert np.allclose(model.intercept_, -(mean @ ref), atol=1e-8)

    def test_augmented_path_matches_paper_formulation(self, rng):
        # centering=False reproduces the Section III-B augmented system
        m, n = 20, 8
        X = rng.standard_normal((m, n))
        y = np.arange(m) % 3
        model = SRDA(alpha=0.7, solver="normal", centering=False).fit(X, y)
        from repro.core.responses import generate_responses

        X_aug = np.hstack([X, np.ones((m, 1))])
        R = generate_responses(y, 3)
        ref = np.linalg.solve(
            X_aug.T @ X_aug + 0.7 * np.eye(n + 1), X_aug.T @ R
        )
        assert np.allclose(model.components_, ref[:-1], atol=1e-8)
        assert np.allclose(model.intercept_, ref[-1], atol=1e-8)

    def test_sparse_equals_dense(self, sparse_classification):
        # same formulation (bias absorption) on both storage layouts
        S, dense, y = sparse_classification
        sparse_model = SRDA(alpha=1.0, solver="lsqr", max_iter=500,
                            tol=1e-14).fit(S, y)
        dense_model = SRDA(alpha=1.0, solver="normal",
                           centering=False).fit(dense, y)
        assert np.allclose(
            sparse_model.components_, dense_model.components_, atol=1e-6
        )

    def test_scipy_sparse_input(self, sparse_classification):
        _, dense, y = sparse_classification
        scipy_model = SRDA(alpha=1.0, solver="lsqr", max_iter=500,
                           tol=1e-14).fit(sp.csr_matrix(dense), y)
        dense_model = SRDA(alpha=1.0, solver="normal",
                           centering=False).fit(dense, y)
        assert np.allclose(
            scipy_model.components_, dense_model.components_, atol=1e-6
        )

    def test_centered_and_augmented_agree_as_alpha_vanishes(
        self, sparse_classification
    ):
        # the two III-B realizations differ only through the penalized
        # bias, an O(α) effect: they coincide in the α → 0 limit
        _, dense, y = sparse_classification
        centered = SRDA(alpha=1e-10, solver="normal").fit(dense, y)
        augmented = SRDA(alpha=1e-10, solver="normal",
                         centering=False).fit(dense, y)
        Z1 = centered.transform(dense)
        Z2 = augmented.transform(dense)
        assert np.allclose(Z1, Z2, atol=1e-4)

    def test_sparse_transform_and_predict(self, sparse_classification):
        S, dense, y = sparse_classification
        model = SRDA(alpha=1.0, solver="lsqr", max_iter=300, tol=1e-13).fit(S, y)
        assert np.allclose(model.transform(S), model.transform(dense), atol=1e-9)
        assert np.array_equal(model.predict(S), model.predict(dense))


class TestInvariances:
    def test_label_permutation_invariance(self, small_classification, rng):
        # relabeling classes must not change the embedding subspace
        X, y = small_classification
        mapping = np.array([2, 0, 1])
        a = SRDA(alpha=1.0, solver="normal").fit(X, y)
        b = SRDA(alpha=1.0, solver="normal").fit(X, mapping[y])
        Za, Zb = a.transform(X), b.transform(X)
        # compare class-centroid pairwise distances (rotation invariant)
        def centroid_distances(Z, labels):
            cents = np.vstack([Z[labels == k].mean(axis=0) for k in range(3)])
            return np.sort(
                np.linalg.norm(cents[:, None] - cents[None, :], axis=-1),
                axis=None,
            )
        da = centroid_distances(Za, y)
        db = centroid_distances(Zb, mapping[y])
        assert np.allclose(da, db, atol=1e-6)

    def test_sample_order_invariance(self, small_classification, rng):
        X, y = small_classification
        perm = rng.permutation(X.shape[0])
        a = SRDA(alpha=1.0, solver="normal").fit(X, y)
        b = SRDA(alpha=1.0, solver="normal").fit(X[perm], y[perm])
        assert np.allclose(a.components_, b.components_, atol=1e-8)
        assert np.allclose(a.intercept_, b.intercept_, atol=1e-8)

    def test_translation_invariance_of_predictions(self, small_classification):
        # the absorbed intercept makes predictions shift-invariant
        X, y = small_classification
        shift = 100.0 * np.ones(X.shape[1])
        a = SRDA(alpha=1.0, solver="normal").fit(X, y)
        b = SRDA(alpha=1.0, solver="normal").fit(X + shift, y)
        assert np.array_equal(a.predict(X), b.predict(X + shift))

    def test_duplicated_dataset_same_direction(self, small_classification):
        # duplicating every sample scales the Gram matrix but should not
        # change predictions
        X, y = small_classification
        X2 = np.vstack([X, X])
        y2 = np.concatenate([y, y])
        a = SRDA(alpha=1e-8, solver="normal").fit(X, y)
        b = SRDA(alpha=1e-8, solver="normal").fit(X2, y2)
        assert np.array_equal(a.predict(X), b.predict(X))
