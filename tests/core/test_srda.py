"""Unit tests for the SRDA estimator."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.core.base import NotFittedError
from repro.core.srda import SRDA
from repro.linalg.sparse import CSRMatrix


class TestBasicBehavior:
    def test_fit_transform_shapes(self, small_classification):
        X, y = small_classification
        model = SRDA(alpha=1.0)
        Z = model.fit_transform(X, y)
        assert Z.shape == (X.shape[0], 2)  # c - 1 dimensions
        assert model.components_.shape == (X.shape[1], 2)
        assert model.intercept_.shape == (2,)

    def test_separable_data_classified_perfectly(self, small_classification):
        X, y = small_classification
        model = SRDA(alpha=1.0).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_predict_returns_original_labels(self, rng):
        X = rng.standard_normal((20, 5))
        X[10:] += 5.0
        y = np.array(["cat"] * 10 + ["dog"] * 10)
        model = SRDA(alpha=1.0).fit(X, y)
        assert set(model.predict(X)) <= {"cat", "dog"}
        assert model.score(X, y) == 1.0

    def test_unfitted_raises(self, rng):
        with pytest.raises(NotFittedError):
            SRDA().transform(rng.standard_normal((3, 4)))
        with pytest.raises(NotFittedError):
            SRDA().predict(rng.standard_normal((3, 4)))

    def test_transform_feature_mismatch(self, small_classification):
        X, y = small_classification
        model = SRDA().fit(X, y)
        with pytest.raises(ValueError):
            model.transform(np.ones((2, X.shape[1] + 1)))

    def test_two_class_problem(self, rng):
        X = np.vstack([rng.standard_normal((15, 6)),
                       rng.standard_normal((15, 6)) + 3.0])
        y = np.repeat([0, 1], 15)
        model = SRDA(alpha=0.5).fit(X, y)
        assert model.components_.shape == (6, 1)
        assert model.score(X, y) == 1.0

    def test_single_class_rejected(self, rng):
        with pytest.raises(ValueError):
            SRDA().fit(rng.standard_normal((5, 3)), np.zeros(5))

    def test_label_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            SRDA().fit(rng.standard_normal((5, 3)), np.zeros(4))


class TestParameters:
    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            SRDA(alpha=-1.0)

    def test_invalid_solver(self):
        with pytest.raises(ValueError):
            SRDA(solver="cg")

    def test_invalid_max_iter(self):
        with pytest.raises(ValueError):
            SRDA(max_iter=0)

    def test_alpha_controls_shrinkage(self, small_classification):
        # centered path penalizes exactly the projection vectors, so
        # their norm is monotone in alpha
        X, y = small_classification
        norms = [
            np.linalg.norm(
                SRDA(alpha=alpha, solver="normal").fit(X, y).components_
            )
            for alpha in (0.01, 1.0, 100.0)
        ]
        assert norms[0] > norms[1] > norms[2]

    def test_invalid_centering(self):
        with pytest.raises(ValueError):
            SRDA(centering="yes")

    def test_centering_resolution(self, small_classification, sparse_classification):
        X, y = small_classification
        assert SRDA().fit(X, y).centered_ is True
        S, _, ys = sparse_classification
        assert SRDA().fit(S, ys).centered_ is False

    def test_centered_normal_on_sparse_rejected(self, sparse_classification):
        S, _, y = sparse_classification
        with pytest.raises(ValueError, match="densifies"):
            SRDA(centering=True, solver="normal").fit(S, y)

    def test_sparse_implicit_centering_matches_dense_centering(
        self, sparse_classification
    ):
        # centering=True on sparse input runs through CenteringOperator
        # and must match explicit dense centering exactly
        S, dense, y = sparse_classification
        implicit = SRDA(
            alpha=1.0, centering=True, solver="lsqr", max_iter=500, tol=1e-14
        ).fit(S, y)
        explicit = SRDA(alpha=1.0, centering=True, solver="normal").fit(dense, y)
        assert np.allclose(
            implicit.components_, explicit.components_, atol=1e-6
        )
        assert np.allclose(implicit.intercept_, explicit.intercept_, atol=1e-6)

    def test_solver_used_reported(self, small_classification):
        X, y = small_classification
        assert SRDA(solver="normal").fit(X, y).solver_used_ == "normal"
        assert SRDA(solver="lsqr").fit(X, y).solver_used_ == "lsqr"
        # dense small input resolves to normal under auto
        assert SRDA(solver="auto").fit(X, y).solver_used_ == "normal"

    def test_auto_prefers_lsqr_for_sparse(self, sparse_classification):
        S, _, y = sparse_classification
        model = SRDA(solver="auto").fit(S, y)
        assert model.solver_used_ == "lsqr"

    def test_auto_switches_to_lsqr_above_size_limit(
        self, small_classification, monkeypatch
    ):
        import repro.core.srda as srda_module

        X, y = small_classification
        monkeypatch.setattr(srda_module, "_AUTO_NORMAL_LIMIT", 5)
        model = SRDA(solver="auto", max_iter=200, tol=1e-12).fit(X, y)
        assert model.solver_used_ == "lsqr"

    def test_lsqr_iteration_telemetry(self, small_classification):
        X, y = small_classification
        model = SRDA(solver="lsqr", max_iter=7, tol=0.0).fit(X, y)
        assert model.lsqr_iterations_ == [7, 7]
        normal = SRDA(solver="normal").fit(X, y)
        assert normal.lsqr_iterations_ is None


class TestSolverAgreement:
    def test_normal_vs_lsqr(self, small_classification):
        X, y = small_classification
        a = SRDA(alpha=1.0, solver="normal").fit(X, y)
        b = SRDA(alpha=1.0, solver="lsqr", max_iter=500, tol=1e-14).fit(X, y)
        assert np.allclose(a.components_, b.components_, atol=1e-6)
        assert np.allclose(a.intercept_, b.intercept_, atol=1e-6)

    def test_primal_vs_dual_normal_path(self, rng):
        # n > m exercises the dual (Eqn 21) branch; compare against the
        # naive primal system on centered data formed explicitly.
        m, n = 12, 30
        X = rng.standard_normal((m, n))
        y = np.arange(m) % 3
        model = SRDA(alpha=0.7, solver="normal").fit(X, y)
        from repro.core.responses import generate_responses

        mean = X.mean(axis=0)
        centered = X - mean
        R = generate_responses(y, 3)
        ref = np.linalg.solve(
            centered.T @ centered + 0.7 * np.eye(n), centered.T @ R
        )
        assert np.allclose(model.components_, ref, atol=1e-8)
        assert np.allclose(model.intercept_, -(mean @ ref), atol=1e-8)

    def test_augmented_path_matches_paper_formulation(self, rng):
        # centering=False reproduces the Section III-B augmented system
        m, n = 20, 8
        X = rng.standard_normal((m, n))
        y = np.arange(m) % 3
        model = SRDA(alpha=0.7, solver="normal", centering=False).fit(X, y)
        from repro.core.responses import generate_responses

        X_aug = np.hstack([X, np.ones((m, 1))])
        R = generate_responses(y, 3)
        ref = np.linalg.solve(
            X_aug.T @ X_aug + 0.7 * np.eye(n + 1), X_aug.T @ R
        )
        assert np.allclose(model.components_, ref[:-1], atol=1e-8)
        assert np.allclose(model.intercept_, ref[-1], atol=1e-8)

    def test_sparse_equals_dense(self, sparse_classification):
        # same formulation (bias absorption) on both storage layouts
        S, dense, y = sparse_classification
        sparse_model = SRDA(alpha=1.0, solver="lsqr", max_iter=500,
                            tol=1e-14).fit(S, y)
        dense_model = SRDA(alpha=1.0, solver="normal",
                           centering=False).fit(dense, y)
        assert np.allclose(
            sparse_model.components_, dense_model.components_, atol=1e-6
        )

    def test_scipy_sparse_input(self, sparse_classification):
        _, dense, y = sparse_classification
        scipy_model = SRDA(alpha=1.0, solver="lsqr", max_iter=500,
                           tol=1e-14).fit(sp.csr_matrix(dense), y)
        dense_model = SRDA(alpha=1.0, solver="normal",
                           centering=False).fit(dense, y)
        assert np.allclose(
            scipy_model.components_, dense_model.components_, atol=1e-6
        )

    def test_centered_and_augmented_agree_as_alpha_vanishes(
        self, sparse_classification
    ):
        # the two III-B realizations differ only through the penalized
        # bias, an O(α) effect: they coincide in the α → 0 limit
        _, dense, y = sparse_classification
        centered = SRDA(alpha=1e-10, solver="normal").fit(dense, y)
        augmented = SRDA(alpha=1e-10, solver="normal",
                         centering=False).fit(dense, y)
        Z1 = centered.transform(dense)
        Z2 = augmented.transform(dense)
        assert np.allclose(Z1, Z2, atol=1e-4)

    def test_sparse_transform_and_predict(self, sparse_classification):
        S, dense, y = sparse_classification
        model = SRDA(alpha=1.0, solver="lsqr", max_iter=300, tol=1e-13).fit(S, y)
        assert np.allclose(model.transform(S), model.transform(dense), atol=1e-9)
        assert np.array_equal(model.predict(S), model.predict(dense))


class TestInvariances:
    def test_label_permutation_invariance(self, small_classification, rng):
        # relabeling classes must not change the embedding subspace
        X, y = small_classification
        mapping = np.array([2, 0, 1])
        a = SRDA(alpha=1.0, solver="normal").fit(X, y)
        b = SRDA(alpha=1.0, solver="normal").fit(X, mapping[y])
        Za, Zb = a.transform(X), b.transform(X)
        # compare class-centroid pairwise distances (rotation invariant)
        def centroid_distances(Z, labels):
            cents = np.vstack([Z[labels == k].mean(axis=0) for k in range(3)])
            return np.sort(
                np.linalg.norm(cents[:, None] - cents[None, :], axis=-1),
                axis=None,
            )
        da = centroid_distances(Za, y)
        db = centroid_distances(Zb, mapping[y])
        assert np.allclose(da, db, atol=1e-6)

    def test_sample_order_invariance(self, small_classification, rng):
        X, y = small_classification
        perm = rng.permutation(X.shape[0])
        a = SRDA(alpha=1.0, solver="normal").fit(X, y)
        b = SRDA(alpha=1.0, solver="normal").fit(X[perm], y[perm])
        assert np.allclose(a.components_, b.components_, atol=1e-8)
        assert np.allclose(a.intercept_, b.intercept_, atol=1e-8)

    def test_translation_invariance_of_predictions(self, small_classification):
        # the absorbed intercept makes predictions shift-invariant
        X, y = small_classification
        shift = 100.0 * np.ones(X.shape[1])
        a = SRDA(alpha=1.0, solver="normal").fit(X, y)
        b = SRDA(alpha=1.0, solver="normal").fit(X + shift, y)
        assert np.array_equal(a.predict(X), b.predict(X + shift))

    def test_duplicated_dataset_same_direction(self, small_classification):
        # duplicating every sample scales the Gram matrix but should not
        # change predictions
        X, y = small_classification
        X2 = np.vstack([X, X])
        y2 = np.concatenate([y, y])
        a = SRDA(alpha=1e-8, solver="normal").fit(X, y)
        b = SRDA(alpha=1e-8, solver="normal").fit(X2, y2)
        assert np.array_equal(a.predict(X), b.predict(X))


class TestBlockPath:
    """The blocked LSQR fit is the default; block=False is the escape
    hatch back to one sequential solve per response column.  Both must
    produce the same model and the same fit diagnostics."""

    def test_block_matches_sequential_dense(self, small_classification):
        X, y = small_classification
        kwargs = dict(alpha=0.5, solver="lsqr", max_iter=15, tol=0.0)
        blocked = SRDA(block=True, **kwargs).fit(X, y)
        sequential = SRDA(block=False, **kwargs).fit(X, y)
        assert np.allclose(
            blocked.components_, sequential.components_, atol=1e-10
        )
        assert np.allclose(
            blocked.intercept_, sequential.intercept_, atol=1e-10
        )
        assert blocked.lsqr_iterations_ == sequential.lsqr_iterations_
        assert (
            blocked.fit_report_.lsqr_istop
            == sequential.fit_report_.lsqr_istop
        )
        assert np.array_equal(blocked.predict(X), sequential.predict(X))

    def test_block_matches_sequential_sparse(self, sparse_classification):
        # 12 iterations: past that, the fixture's ill conditioning
        # amplifies summation-order rounding through the Golub–Kahan
        # recurrence (both paths drift from exact arithmetic equally).
        matrix, _, y = sparse_classification
        kwargs = dict(alpha=1.0, solver="lsqr", max_iter=12, tol=0.0)
        blocked = SRDA(block=True, **kwargs).fit(matrix, y)
        sequential = SRDA(block=False, **kwargs).fit(matrix, y)
        assert np.allclose(
            blocked.components_, sequential.components_, atol=1e-10
        )
        assert blocked.fit_report_.lsqr_istop == (
            sequential.fit_report_.lsqr_istop
        )

    def test_block_matches_sequential_tolerance_stopping(
        self, sparse_classification
    ):
        matrix, _, y = sparse_classification
        kwargs = dict(alpha=1.0, solver="lsqr", max_iter=200, tol=1e-8)
        blocked = SRDA(block=True, **kwargs).fit(matrix, y)
        sequential = SRDA(block=False, **kwargs).fit(matrix, y)
        scale = max(1.0, np.max(np.abs(sequential.components_)))
        assert (
            np.max(np.abs(blocked.components_ - sequential.components_))
            / scale
            < 5e-8
        )

    def test_block_warm_start(self, small_classification):
        X, y = small_classification
        kwargs = dict(
            alpha=0.5, solver="lsqr", max_iter=10, tol=0.0, warm_start=True
        )
        blocked = SRDA(block=True, **kwargs)
        sequential = SRDA(block=False, **kwargs)
        for model in (blocked, sequential):
            model.fit(X, y)
            model.fit(X, y)  # second fit starts from the first solution
        assert np.allclose(
            blocked.components_, sequential.components_, atol=1e-9
        )
        assert blocked.lsqr_iterations_ == sequential.lsqr_iterations_


class TestAlphaPath:
    def test_matches_cold_fits(self, sparse_classification):
        from repro.core.srda import srda_alpha_path

        matrix, _, y = sparse_classification
        alphas = [0.01, 0.5, 1.0, 10.0]
        models = srda_alpha_path(matrix, y, alphas, max_iter=15, tol=0.0)
        assert len(models) == len(alphas)
        for alpha, model in zip(alphas, models):
            cold = SRDA(
                alpha=alpha, solver="lsqr", max_iter=15, tol=0.0
            ).fit(matrix, y)
            assert np.array_equal(model.components_, cold.components_)
            assert np.array_equal(model.intercept_, cold.intercept_)
            assert np.allclose(model.centroids_, cold.centroids_, atol=1e-8)
            assert model.lsqr_iterations_ == cold.lsqr_iterations_
            assert (
                model.fit_report_.lsqr_istop == cold.fit_report_.lsqr_istop
            )
            assert np.array_equal(model.predict(matrix), cold.predict(matrix))

    def test_dense_centered_path(self, small_classification):
        from repro.core.srda import srda_alpha_path

        X, y = small_classification
        models = srda_alpha_path(X, y, [0.1, 1.0], max_iter=15, tol=0.0)
        for alpha, model in zip((0.1, 1.0), models):
            cold = SRDA(
                alpha=alpha, solver="lsqr", max_iter=15, tol=0.0
            ).fit(X, y)
            assert model.centered_ is True
            assert np.array_equal(model.components_, cold.components_)
            assert np.array_equal(model.intercept_, cold.intercept_)

    def test_one_data_pass_for_whole_grid(
        self, sparse_classification, monkeypatch
    ):
        """The alpha grid costs one bidiagonalization: the operator
        product count is independent of the number of alphas."""
        import repro.core.srda as srda_module
        from repro.core.srda import srda_alpha_path

        matrix, _, y = sparse_classification
        max_iter = 10

        def count_products(alphas):
            captured = []
            real = srda_module.as_operator

            def spy(data):
                op = real(data)
                captured.append(op)
                return op

            monkeypatch.setattr(srda_module, "as_operator", spy)
            srda_alpha_path(matrix, y, alphas, max_iter=max_iter, tol=0.0)
            monkeypatch.setattr(srda_module, "as_operator", real)
            base = captured[0]
            return (
                base.n_matmat
                + base.n_rmatmat
                + base.n_matvec
                + base.n_rmatvec
            )

        one = count_products([1.0])
        nine = count_products([0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0])
        # recording: max_iter matmats + (max_iter + 1) rmatmats, plus
        # one rmatmat for the class-mean centroids
        assert one == 2 * max_iter + 2
        assert nine == one

    def test_empty_grid(self, sparse_classification):
        from repro.core.srda import srda_alpha_path

        matrix, _, y = sparse_classification
        assert srda_alpha_path(matrix, y, []) == []

    def test_negative_alpha_rejected(self, sparse_classification):
        from repro.core.srda import srda_alpha_path

        matrix, _, y = sparse_classification
        with pytest.raises(ValueError):
            srda_alpha_path(matrix, y, [1.0, -0.5])
