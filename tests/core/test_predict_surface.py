"""Conformance of the unified predict surface across the registry.

Every estimator in :func:`repro.all_estimators` exposes ``transform``
returning an ``(m, d)`` embedding under the
:func:`~repro.core.base.working_dtype` contract (float32 in → float32
out, everything else float64).  Classifiers additionally expose
``decision_function`` returning ``(m, c)`` scores whose row-wise
``argmax`` *is* ``predict`` — bitwise, including tie-breaks.  PCA and
SpectralRegressionEmbedding are transformer-only and are held to the
embedding half of the contract.
"""

import numpy as np
import pytest

from repro import all_estimators
from repro.core.base import NotFittedError, working_dtype

REGISTRY = all_estimators()

#: Estimators with no label read-out: ``fit`` accepts ``y=None`` and the
#: surface is ``transform`` only.
TRANSFORMER_ONLY = {"PCA", "SpectralRegressionEmbedding"}

CLASSIFIERS = [name for name in REGISTRY if name not in TRANSFORMER_ONLY]


def _dataset():
    """Well-separated 3-class problem shared by every conformance case."""
    rng = np.random.default_rng(0)
    n_per_class, n_features, n_classes = 20, 10, 3
    centers = 6.0 * rng.standard_normal((n_classes, n_features))
    X = np.vstack(
        [
            centers[k] + rng.standard_normal((n_per_class, n_features))
            for k in range(n_classes)
        ]
    )
    y = np.repeat(np.arange(n_classes), n_per_class)
    shuffle = rng.permutation(X.shape[0])
    X_test = np.vstack(
        [
            centers[k] + rng.standard_normal((7, n_features))
            for k in range(n_classes)
        ]
    )
    return X[shuffle], y[shuffle], X_test


X_TRAIN, Y_TRAIN, X_TEST = _dataset()

_FITTED = {}


def fitted(name):
    """Fit each registry estimator once and reuse it across cases."""
    if name not in _FITTED:
        cls = REGISTRY[name]()
        estimator = cls()
        if name in TRANSFORMER_ONLY:
            estimator.fit(X_TRAIN)
        else:
            estimator.fit(X_TRAIN, Y_TRAIN)
        _FITTED[name] = estimator
    return _FITTED[name]


@pytest.mark.parametrize("name", sorted(REGISTRY))
class TestTransformContract:
    def test_float64_embedding_shape_and_dtype(self, name):
        Z = fitted(name).transform(X_TEST)
        assert Z.ndim == 2
        assert Z.shape[0] == X_TEST.shape[0]
        assert Z.dtype == np.float64

    def test_float32_in_float32_out(self, name):
        estimator = fitted(name)
        X32 = X_TEST.astype(np.float32)
        Z32 = estimator.transform(X32)
        Z64 = estimator.transform(X_TEST)
        assert Z32.dtype == np.float32
        assert Z32.shape == Z64.shape
        scale = float(np.abs(Z64).max()) + 1.0
        np.testing.assert_allclose(Z32, Z64, rtol=1e-3, atol=1e-3 * scale)

    def test_working_dtype_helper_matches_output(self, name):
        estimator = fitted(name)
        for X in (X_TEST, X_TEST.astype(np.float32)):
            assert estimator.transform(X).dtype == working_dtype(X)

    def test_unfitted_transform_raises(self, name):
        cls = REGISTRY[name]()
        with pytest.raises(NotFittedError):
            cls().transform(X_TEST)


@pytest.mark.parametrize("name", sorted(CLASSIFIERS))
class TestClassifierContract:
    def test_decision_function_shape(self, name):
        estimator = fitted(name)
        scores = estimator.decision_function(X_TEST)
        assert scores.shape == (
            X_TEST.shape[0],
            estimator.classes_.shape[0],
        )
        assert scores.dtype == np.float64

    def test_predict_is_argmax_of_decision_function(self, name):
        estimator = fitted(name)
        scores = estimator.decision_function(X_TEST)
        expected = estimator.classes_[np.argmax(scores, axis=1)]
        np.testing.assert_array_equal(estimator.predict(X_TEST), expected)

    def test_predict_labels_come_from_classes(self, name):
        estimator = fitted(name)
        labels = estimator.predict(X_TEST)
        assert labels.shape == (X_TEST.shape[0],)
        assert np.isin(labels, estimator.classes_).all()

    def test_float32_scores_dtype_and_agreement(self, name):
        estimator = fitted(name)
        scores32 = estimator.decision_function(X_TEST.astype(np.float32))
        assert scores32.dtype == np.float32
        # Well-separated classes: single precision must not change the
        # read-out.
        np.testing.assert_array_equal(
            estimator.classes_[np.argmax(scores32, axis=1)],
            estimator.predict(X_TEST),
        )

    def test_score_is_training_accuracy(self, name):
        estimator = fitted(name)
        accuracy = estimator.score(X_TRAIN, Y_TRAIN)
        assert 0.9 <= accuracy <= 1.0

    def test_unfitted_decision_function_raises(self, name):
        cls = REGISTRY[name]()
        with pytest.raises(NotFittedError):
            cls().decision_function(X_TEST)


@pytest.mark.parametrize("name", sorted(TRANSFORMER_ONLY))
class TestTransformerOnlySurface:
    def test_no_label_read_out(self, name):
        estimator = fitted(name)
        assert not hasattr(estimator, "predict")
        assert not hasattr(estimator, "decision_function")

    def test_fit_accepts_no_labels(self, name):
        cls = REGISTRY[name]()
        estimator = cls().fit(X_TRAIN)
        assert estimator.transform(X_TEST).shape[0] == X_TEST.shape[0]
