"""SRDA.partial_fit: equivalence to fit, warm-start payoff, edge cases.

The contract under test (documented on :meth:`SRDA.partial_fit`):

- streaming batches and cold-fitting the concatenation minimize the
  same ridge objective, so converged solves agree to solver tolerance
  (``<= 1e-6`` here, float64);
- the warm start pays in *iterations* — on ill-conditioned data each
  incremental solve must take strictly fewer LSQR iterations than the
  cold refit at the same tolerance;
- the response construction is an exact integer function of the class
  histogram, hence bitwise independent of batch order.
"""

import numpy as np
import pytest

from repro import SRDA, SolverConfig
from repro.core.responses import response_table_from_counts
from repro.robustness.report import RobustnessWarning

pytestmark = pytest.mark.partial_fit

LSQR = dict(
    alpha=1.0, config=SolverConfig(solver="lsqr"), max_iter=500, tol=1e-12
)

#: Acceptance bound for partial_fit-vs-fit agreement (float64).
EQUIVALENCE_BOUND = 1e-6


def _blobs(rng, m, n_features=12, n_classes=4, centers=None):
    if centers is None:
        centers = 4.0 * rng.standard_normal((n_classes, n_features))
    y = rng.integers(0, centers.shape[0], size=m)
    y[: centers.shape[0]] = np.arange(centers.shape[0])
    X = centers[y] + rng.standard_normal((m, centers.shape[0] and n_features))
    return X, y, centers


def _ill_conditioned_stream(seed, n=80, c=6, cond=1e2):
    """Class blobs pushed through a power-law column spectrum.

    On this conditioning the cold LSQR at tol=1e-10 needs hundreds of
    iterations, so the warm start's head start is measurable — on
    well-conditioned data both converge in a handful of iterations and
    "strictly fewer" would be vacuous or flaky.
    """
    rng = np.random.default_rng(seed)
    U = np.linalg.qr(rng.standard_normal((n, n)))[0]
    base = U * cond ** (-np.arange(n) / (n - 1))
    centers = 2.0 * rng.standard_normal((c, n))

    def make(m):
        y = rng.integers(0, c, size=m)
        y[:c] = np.arange(c)
        return (centers[y] + rng.standard_normal((m, n))) @ base, y

    return make


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_fit_and_saves_iterations(self, seed):
        """The acceptance claim: <= 1e-6 agreement, strictly fewer iters."""
        make = _ill_conditioned_stream(seed)
        kwargs = dict(
            alpha=0.01,
            config=SolverConfig(solver="lsqr"),
            max_iter=1000,
            tol=1e-10,
        )
        warm = SRDA(**kwargs)
        X0, y0 = make(1000)
        warm.partial_fit(X0, y0)
        seen_X, seen_y = [X0], [y0]
        for _ in range(2):
            Xb, yb = make(10)
            seen_X.append(Xb)
            seen_y.append(yb)
            warm.partial_fit(Xb, yb)
            cold = SRDA(**kwargs).fit(
                np.vstack(seen_X), np.concatenate(seen_y)
            )
            diff = np.abs(warm.components_ - cold.components_).max()
            assert diff <= EQUIVALENCE_BOUND
            assert max(warm.lsqr_iterations_) < max(cold.lsqr_iterations_)
            assert warm.fit_report_.incremental["warm_started"]

    def test_predictions_match_fit(self):
        rng = np.random.default_rng(5)
        X, y, centers = _blobs(rng, 120)
        stream = SRDA(**LSQR)
        for start in range(0, 120, 40):
            stream.partial_fit(X[start:start + 40], y[start:start + 40])
        full = SRDA(**LSQR).fit(X, y)
        X_new = centers[y[:30]] + rng.standard_normal((30, X.shape[1]))
        np.testing.assert_array_equal(
            stream.predict(X_new), full.predict(X_new)
        )


class TestUnseenClasses:
    def test_class_set_grows_mid_stream(self):
        rng = np.random.default_rng(2)
        X, y, _ = _blobs(rng, 90, n_classes=5)
        first = y < 3  # classes {0,1,2} only
        model = SRDA(**LSQR)
        model.partial_fit(X[first], y[first])
        assert model.classes_.tolist() == [0, 1, 2]
        model.partial_fit(X[~first], y[~first])
        assert model.classes_.tolist() == [0, 1, 2, 3, 4]
        added = model.fit_report_.incremental["classes_added"]
        assert added == [3, 4]
        full = SRDA(**LSQR).fit(
            np.vstack([X[first], X[~first]]),
            np.concatenate([y[first], y[~first]]),
        )
        diff = np.abs(model.components_ - full.components_).max()
        assert diff <= EQUIVALENCE_BOUND

    def test_single_class_stream_widens(self):
        """A stream may legitimately start with one class: no raise,
        zero-dimensional embedding, then a real model once it widens."""
        rng = np.random.default_rng(3)
        X, y, _ = _blobs(rng, 60, n_classes=3)
        model = SRDA(**LSQR)
        with pytest.warns(RobustnessWarning, match="one class"):
            model.partial_fit(X[y == 0], y[y == 0])
        assert model.classes_.tolist() == [0]
        assert model.transform(X[:4]).shape == (4, 0)
        model.partial_fit(X[y != 0], y[y != 0])
        assert model.classes_.tolist() == [0, 1, 2]
        assert model.components_.shape[1] == 2


class TestBatchShapes:
    def test_single_row_batches(self):
        rng = np.random.default_rng(4)
        X, y, _ = _blobs(rng, 50)
        model = SRDA(**LSQR)
        model.partial_fit(X[:30], y[:30])
        for i in range(30, 50):
            model.partial_fit(X[i:i + 1], y[i:i + 1])
        assert model.fit_report_.incremental["batches"] == 21
        assert model.fit_report_.incremental["rows_total"] == 50
        full = SRDA(**LSQR).fit(X, y)
        diff = np.abs(model.components_ - full.components_).max()
        assert diff <= EQUIVALENCE_BOUND

    def test_dtype_mixed_batches(self):
        """float32 / float64 / integer batches share one stream; the
        result matches a fit on the same values upcast to float64."""
        rng = np.random.default_rng(6)
        X, y, _ = _blobs(rng, 90)
        batches = [
            X[:30].astype(np.float32),
            X[30:60],  # float64
            np.round(X[60:] * 4.0).astype(np.int32),
        ]
        model = SRDA(**LSQR)
        for Xb, yb in zip(batches, (y[:30], y[30:60], y[60:])):
            model.partial_fit(Xb, yb)
        X_ref = np.vstack([b.astype(np.float64) for b in batches])
        full = SRDA(**LSQR).fit(X_ref, y)
        diff = np.abs(model.components_ - full.components_).max()
        assert diff <= EQUIVALENCE_BOUND

    def test_feature_count_mismatch_rejected(self):
        rng = np.random.default_rng(7)
        X, y, _ = _blobs(rng, 40)
        model = SRDA(**LSQR)
        model.partial_fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.partial_fit(X[:, :5], y)


class TestDeterminism:
    def test_counts_and_table_bitwise_under_batch_permutation(self):
        """The class histogram and the response table built from it are
        integer-exact, so any batch order produces bitwise-identical
        values — the documented guarantee behind reproducible streams."""
        rng = np.random.default_rng(8)
        X, y, _ = _blobs(rng, 120, n_classes=5)
        splits = [(0, 50), (50, 80), (80, 120)]
        reference = None
        for order in ([0, 1, 2], [2, 0, 1], [1, 2, 0]):
            model = SRDA(**LSQR)
            for k in order:
                lo, hi = splits[k]
                model.partial_fit(X[lo:hi], y[lo:hi])
            counts = model._incremental.counts
            table = response_table_from_counts(counts)
            if reference is None:
                reference = (counts.copy(), table.copy())
            else:
                assert np.array_equal(counts, reference[0])
                # bitwise, not allclose: the table is a pure function
                # of integer counts
                assert np.array_equal(table, reference[1])

    def test_incremental_report_fields(self):
        rng = np.random.default_rng(9)
        X, y, _ = _blobs(rng, 60)
        model = SRDA(**LSQR)
        model.partial_fit(X[:40], y[:40])
        first = model.fit_report_.incremental
        assert first["batches"] == 1
        assert first["rows_new"] == 40
        assert not first["warm_started"]
        model.partial_fit(X[40:], y[40:])
        second = model.fit_report_.incremental
        assert second["batches"] == 2
        assert second["rows_total"] == 60
        assert second["warm_started"]


class TestStreamSemantics:
    def test_fit_discards_stream(self):
        rng = np.random.default_rng(10)
        X, y, _ = _blobs(rng, 80)
        model = SRDA(**LSQR)
        model.partial_fit(X[:40], y[:40])
        model.fit(X[40:], y[40:])
        fresh = SRDA(**LSQR).fit(X[40:], y[40:])
        np.testing.assert_array_equal(
            model.components_, fresh.components_
        )
        assert model.fit_report_.incremental is None

    def test_partial_fit_after_fit_starts_fresh(self):
        rng = np.random.default_rng(11)
        X, y, _ = _blobs(rng, 80)
        model = SRDA(**LSQR)
        model.fit(X[:40], y[:40])
        model.partial_fit(X[40:], y[40:])
        assert model.fit_report_.incremental["batches"] == 1
        assert model.fit_report_.incremental["rows_total"] == 40
        fresh = SRDA(**LSQR)
        fresh.partial_fit(X[40:], y[40:])
        diff = np.abs(model.components_ - fresh.components_).max()
        assert diff <= EQUIVALENCE_BOUND

    def test_normal_solver_rejected(self):
        rng = np.random.default_rng(12)
        X, y, _ = _blobs(rng, 40)
        model = SRDA(alpha=1.0, config=SolverConfig(solver="normal"))
        with pytest.raises(ValueError, match="iterative solver"):
            model.partial_fit(X, y)

    def test_sparse_dense_mixing_rejected(self):
        import scipy.sparse as sp

        rng = np.random.default_rng(13)
        X, y, _ = _blobs(rng, 60)
        model = SRDA(**LSQR)
        model.partial_fit(sp.csr_matrix(X[:30]), y[:30])
        with pytest.raises(ValueError, match="mix sparse and dense"):
            model.partial_fit(X[30:], y[30:])
