"""Unit tests for the kernel SRDA extension."""

import numpy as np
import pytest

from repro.core.base import NotFittedError
from repro.core.kernel_srda import (
    KernelSRDA,
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
)


@pytest.fixture
def rings(rng):
    """Two concentric rings — linearly inseparable, RBF-separable."""
    n = 60
    angles = rng.uniform(0, 2 * np.pi, n)
    radii = np.where(np.arange(n) % 2 == 0, 1.0, 3.0)
    radii = radii + 0.1 * rng.standard_normal(n)
    X = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
    y = (np.arange(n) % 2).astype(int)
    return X, y


class TestKernels:
    def test_linear_kernel(self, rng):
        X = rng.standard_normal((5, 3))
        Y = rng.standard_normal((4, 3))
        assert np.allclose(linear_kernel(X, Y), X @ Y.T)

    def test_rbf_diagonal_is_one(self, rng):
        X = rng.standard_normal((6, 4))
        K = rbf_kernel(X, X, gamma=0.5)
        assert np.allclose(np.diag(K), 1.0)
        assert K.max() <= 1.0 + 1e-12
        assert np.allclose(K, K.T)

    def test_rbf_decays_with_distance(self):
        X = np.array([[0.0], [1.0], [5.0]])
        K = rbf_kernel(X, X, gamma=1.0)
        assert K[0, 1] > K[0, 2]

    def test_polynomial_kernel(self, rng):
        X = rng.standard_normal((4, 3))
        K = polynomial_kernel(X, X, degree=2, coef0=1.0, gamma=1.0)
        assert np.allclose(K, (X @ X.T + 1.0) ** 2)


class TestKernelSRDA:
    def test_rbf_separates_rings(self, rings):
        X, y = rings
        linear_score = KernelSRDA(alpha=0.01, kernel="linear").fit(X, y).score(X, y)
        rbf_score = KernelSRDA(alpha=0.01, kernel="rbf", gamma=1.0).fit(
            X, y
        ).score(X, y)
        assert rbf_score > 0.95
        assert rbf_score > linear_score

    def test_embedding_shape(self, small_classification):
        X, y = small_classification
        Z = KernelSRDA(alpha=0.1).fit_transform(X, y)
        assert Z.shape == (X.shape[0], 2)

    def test_fit_transform_equals_fit_then_transform(self, small_classification):
        X, y = small_classification
        a = KernelSRDA(alpha=0.1, kernel="rbf")
        Z1 = a.fit_transform(X, y)
        Z2 = a.transform(X)
        assert np.allclose(Z1, Z2, atol=1e-8)

    def test_precomputed_matches_builtin(self, small_classification):
        X, y = small_classification
        gamma = 1.0 / X.shape[1]
        K = rbf_kernel(X, X, gamma)
        builtin = KernelSRDA(alpha=0.1, kernel="rbf").fit(X, y)
        precomputed = KernelSRDA(alpha=0.1, kernel="precomputed").fit(K, y)
        assert np.allclose(
            builtin.transform(X), precomputed.transform(K), atol=1e-8
        )

    def test_precomputed_requires_square(self, rng):
        with pytest.raises(ValueError):
            KernelSRDA(kernel="precomputed").fit(
                rng.standard_normal((4, 5)), np.array([0, 1, 0, 1])
            )

    def test_poly_kernel_runs(self, small_classification):
        X, y = small_classification
        model = KernelSRDA(alpha=0.5, kernel="poly", degree=2).fit(X, y)
        assert model.score(X, y) > 0.8

    def test_unfitted_raises(self, rng):
        with pytest.raises(NotFittedError):
            KernelSRDA().transform(rng.standard_normal((3, 4)))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KernelSRDA(alpha=0.0)
        with pytest.raises(ValueError):
            KernelSRDA(kernel="sigmoid")

    def test_linear_kernel_close_to_linear_srda_predictions(
        self, small_classification
    ):
        # with a linear kernel and matching regularization geometry, the
        # decision structure should mirror linear SRDA on easy data
        from repro.core.srda import SRDA

        X, y = small_classification
        kernel_pred = KernelSRDA(alpha=1.0, kernel="linear").fit(X, y).predict(X)
        linear_pred = SRDA(alpha=1.0).fit(X, y).predict(X)
        assert np.mean(kernel_pred == linear_pred) >= 0.95
