"""SRDA solver="sketched_lsqr": parity, iteration savings, composition."""

import numpy as np
import pytest

from repro.core.srda import SRDA, srda_alpha_path
from repro.linalg.sparse import CSRMatrix
from repro.robustness import RobustnessWarning


def ill_conditioned_classification(rng, m=240, n=40, c=4, cond=1e2):
    """Separable classes over geometrically scaled columns."""
    scales = np.logspace(0, np.log10(cond), n)
    X = rng.standard_normal((m, n)) / scales
    y = np.arange(m) % c
    X[np.arange(m), y] += 3.0 / scales[y]
    return X, y


def sparse_classification_skewed(rng, m=300, n=80, c=3):
    """CSR data with a heavy-row prefix (exercises the nnz layout)."""
    ks = np.where(np.arange(m) < m // 10, 30, 3)
    indptr = np.zeros(m + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(ks)
    indices = np.concatenate(
        [np.sort(rng.choice(n, size=int(k), replace=False)) for k in ks]
    ).astype(np.int64)
    data = rng.standard_normal(int(indptr[-1]))
    y = np.arange(m) % c
    X = CSRMatrix(data, indices, indptr, (m, n))
    return X, y


class TestSketchedSolver:
    def test_dense_parity_with_fewer_iterations(self, rng):
        X, y = ill_conditioned_classification(rng)
        kwargs = dict(alpha=0.1, max_iter=2000, tol=1e-10)
        plain = SRDA(solver="lsqr", **kwargs).fit(X, y)
        fast = SRDA(solver="sketched_lsqr", **kwargs).fit(X, y)
        np.testing.assert_allclose(
            fast.components_, plain.components_, atol=1e-6
        )
        np.testing.assert_allclose(
            fast.intercept_, plain.intercept_, atol=1e-6
        )
        assert max(fast.lsqr_iterations_) < max(plain.lsqr_iterations_)

    def test_sparse_parity(self, rng):
        X, y = sparse_classification_skewed(rng)
        kwargs = dict(alpha=0.5, max_iter=2000, tol=1e-10)
        plain = SRDA(solver="lsqr", **kwargs).fit(X, y)
        fast = SRDA(solver="sketched_lsqr", **kwargs).fit(X, y)
        np.testing.assert_allclose(
            fast.components_, plain.components_, atol=1e-6
        )

    def test_solver_recorded_in_report(self, rng):
        X, y = ill_conditioned_classification(rng, m=120, n=20)
        model = SRDA(
            solver="sketched_lsqr", alpha=0.1, max_iter=500, tol=1e-10
        ).fit(X, y)
        assert model.solver_used_ == "sketched_lsqr"
        assert model.fit_report_.solver == "sketched_lsqr"
        assert model.fit_report_.converged

    def test_seeded_determinism(self, rng):
        X, y = ill_conditioned_classification(rng, m=120, n=20)
        kwargs = dict(
            solver="sketched_lsqr", alpha=0.1, max_iter=500, tol=1e-10
        )
        a = SRDA(sketch_seed=3, **kwargs).fit(X, y)
        b = SRDA(sketch_seed=3, **kwargs).fit(X, y)
        c = SRDA(sketch_seed=4, **kwargs).fit(X, y)
        assert np.array_equal(a.components_, b.components_)
        # A different draw changes the iterate trajectory (same
        # solution to tolerance, different bits).
        np.testing.assert_allclose(
            a.components_, c.components_, atol=1e-6
        )

    @pytest.mark.parametrize("kind", ["countsketch", "sparse_sign", "srht"])
    def test_every_sketch_family_fits(self, rng, kind):
        X, y = ill_conditioned_classification(rng, m=120, n=20)
        model = SRDA(
            solver="sketched_lsqr", sketch=kind, alpha=0.1,
            max_iter=500, tol=1e-10,
        ).fit(X, y)
        baseline = SRDA(solver="normal", alpha=0.1).fit(X, y)
        np.testing.assert_allclose(
            model.components_, baseline.components_, atol=1e-5
        )

    def test_wide_data_degrades_to_plain_lsqr(self, rng):
        # n >= m: the (n, n) sketch Gram would dominate the data (the
        # news grid is 3000 x 26214 — a 5.5 GB factor), so the fit
        # must fall back to plain LSQR instead of building it.
        X = rng.standard_normal((60, 100))
        y = np.arange(60) % 3
        kwargs = dict(alpha=0.5, max_iter=500, tol=1e-10)
        with pytest.warns(RobustnessWarning, match="tall"):
            model = SRDA(solver="sketched_lsqr", **kwargs).fit(X, y)
        assert model.solver_used_ == "lsqr"
        assert model.fit_report_.solver == "lsqr"
        assert model.fit_report_.requested_solver == "sketched_lsqr"
        plain = SRDA(solver="lsqr", **kwargs).fit(X, y)
        assert np.array_equal(model.components_, plain.components_)

    def test_wide_alpha_path_degrades_to_replay(self, rng):
        X = rng.standard_normal((40, 64))
        y = np.arange(40) % 2
        with pytest.warns(RobustnessWarning, match="tall"):
            path = srda_alpha_path(
                X, y, [0.5, 5.0], solver="sketched_lsqr",
                max_iter=500, tol=1e-10,
            )
        plain = srda_alpha_path(X, y, [0.5, 5.0], max_iter=500, tol=1e-10)
        for fast, ref in zip(path, plain):
            assert fast.solver_used_ == "lsqr"
            assert fast.fit_report_.solver == "lsqr"
            assert fast.fit_report_.requested_solver == "sketched_lsqr"
            np.testing.assert_allclose(
                fast.components_, ref.components_, atol=1e-8
            )

    def test_invalid_sketch_parameters_rejected(self):
        with pytest.raises(ValueError, match="unknown sketch"):
            SRDA(sketch="gaussian")
        with pytest.raises(ValueError, match="sketch_size"):
            SRDA(sketch_size=0)
        with pytest.raises(ValueError, match="solver"):
            SRDA(solver="sketch")


class TestShardedComposition:
    def test_backends_are_bitwise_identical_when_sharded(self, rng):
        # m=1200 rows shard into >1 block; the layout is a pure
        # function of the data, so backend and worker count must not
        # change a bit.  (The unsharded fit differs in the rmatmat
        # fold's low bits — that is the parallel layer's documented
        # contract, tested separately below at the 1e-6 level.)
        X, y = sparse_classification_skewed(rng, m=1200, n=80)
        kwargs = dict(
            solver="sketched_lsqr", alpha=0.5, max_iter=800, tol=1e-10
        )
        serial = SRDA(backend="serial", **kwargs).fit(X, y)
        thread2 = SRDA(backend="thread", n_jobs=2, **kwargs).fit(X, y)
        thread4 = SRDA(backend="thread", n_jobs=4, **kwargs).fit(X, y)
        for other in (thread2, thread4):
            assert np.array_equal(serial.components_, other.components_)
            assert np.array_equal(serial.intercept_, other.intercept_)
        assert thread2.solver_used_ == "sketched_lsqr"

    def test_sharded_fit_matches_unsharded(self, rng):
        X, y = sparse_classification_skewed(rng, m=1200, n=80)
        kwargs = dict(
            solver="sketched_lsqr", alpha=0.5, max_iter=800, tol=1e-10
        )
        unsharded = SRDA(**kwargs).fit(X, y)
        sharded = SRDA(backend="thread", n_jobs=2, **kwargs).fit(X, y)
        np.testing.assert_allclose(
            sharded.components_, unsharded.components_, atol=1e-6
        )


class TestSketchedAlphaPath:
    def test_path_matches_independent_sketched_fits(self, rng):
        X, y = ill_conditioned_classification(rng, m=160, n=24)
        alphas = [0.1, 1.0, 10.0]
        path = srda_alpha_path(
            X, y, alphas, solver="sketched_lsqr",
            max_iter=800, tol=1e-10,
        )
        for alpha, model in zip(alphas, path):
            single = SRDA(
                solver="sketched_lsqr", alpha=alpha,
                max_iter=800, tol=1e-10,
            ).fit(X, y)
            np.testing.assert_allclose(
                model.components_, single.components_, atol=1e-5
            )
            assert model.solver_used_ == "sketched_lsqr"
            assert model.fit_report_.solver == "sketched_lsqr"

    def test_path_matches_lsqr_path(self, rng):
        X, y = ill_conditioned_classification(rng, m=160, n=24)
        alphas = [0.5, 5.0]
        plain = srda_alpha_path(X, y, alphas, max_iter=2000, tol=1e-10)
        fast = srda_alpha_path(
            X, y, alphas, solver="sketched_lsqr",
            max_iter=2000, tol=1e-10,
        )
        for a, b in zip(plain, fast):
            np.testing.assert_allclose(
                a.components_, b.components_, atol=1e-5
            )

    def test_invalid_solver_rejected(self, rng):
        X, y = ill_conditioned_classification(rng, m=60, n=10)
        with pytest.raises(ValueError, match="solver"):
            srda_alpha_path(X, y, [1.0], solver="normal")
