"""Distributed backend tests: real localhost worker subprocesses."""

import numpy as np
import pytest

from repro.distributed import DistributedBackend
from repro.exceptions import ClusterUnhealthyError
from repro.linalg.sparse import CSRMatrix
from repro.parallel.sharded import ShardedOperator

pytestmark = [pytest.mark.distributed, pytest.mark.slow]


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"injected failure on {x}")


@pytest.fixture
def backend():
    b = DistributedBackend(
        n_workers=2, heartbeat_interval=0.5, task_timeout=10.0
    )
    yield b
    b.close()


def _dense_problem(rng, m=600, n=40):
    X = rng.standard_normal((m, n))
    return X


class TestLifecycle:
    def test_lazy_start(self, backend):
        assert not backend.started
        assert backend.healthy
        backend.map(_square, [1, 2, 3])
        assert backend.started
        assert backend.stats()["live_workers"] == 2

    def test_stats_before_start(self, backend):
        stats = backend.stats()
        assert stats["started"] is False
        assert stats["bytes_sent"] == 0

    def test_close_idempotent_then_rejects_use(self, backend):
        backend.close()
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            backend.map(_square, [1])

    def test_on_unhealthy_validated(self):
        with pytest.raises(ValueError, match="on_unhealthy"):
            DistributedBackend(n_workers=1, on_unhealthy="explode")


class TestMap:
    def test_map_matches_local(self, backend):
        items = list(range(17))
        assert backend.map(_square, items) == [_square(x) for x in items]

    def test_map_empty(self, backend):
        assert backend.map(_square, []) == []

    def test_map_propagates_task_exception(self, backend):
        with pytest.raises(ValueError, match="injected failure on 0"):
            backend.map(_boom, [0, 1])


class TestShardSurface:
    def test_ship_and_run_bitwise(self, backend, rng):
        block = rng.standard_normal((50, 8))
        operand = rng.standard_normal(8)
        keys = backend.ship_shards(
            [{"kind": "dense", "shape": block.shape, "arrays": {"block": block}}]
        )
        [result] = backend.run_tasks(
            [{"key": keys[0], "kernel": "matvec", "operand": operand}]
        )
        assert np.array_equal(result, block @ operand)

    def test_traffic_is_counted(self, backend, rng):
        block = rng.standard_normal((50, 8))
        backend.ship_shards(
            [{"kind": "dense", "shape": block.shape, "arrays": {"block": block}}]
        )
        stats = backend.stats()
        assert stats["bytes_sent"] > block.nbytes
        assert stats["bytes_received"] > 0


class TestRecovery:
    def test_kill_reassign_retry(self, backend, rng):
        block_a = rng.standard_normal((30, 6))
        block_b = rng.standard_normal((25, 6))
        operand = rng.standard_normal(6)
        keys = backend.ship_shards(
            [
                {"kind": "dense", "shape": b.shape, "arrays": {"block": b}}
                for b in (block_a, block_b)
            ]
        )
        backend.kill_worker(0)
        results = backend.run_tasks(
            [
                {"key": keys[0], "kernel": "matvec", "operand": operand},
                {"key": keys[1], "kernel": "matvec", "operand": operand},
            ]
        )
        assert np.array_equal(results[0], block_a @ operand)
        assert np.array_equal(results[1], block_b @ operand)
        stats = backend.stats()
        assert stats["worker_deaths"] == 1
        assert stats["reassignments"] >= 1
        assert stats["live_workers"] == 1

    def test_all_workers_dead_is_unhealthy(self, rng):
        backend = DistributedBackend(
            n_workers=2,
            heartbeat_interval=0.0,
            task_timeout=2.0,
            max_retries=1,
        )
        try:
            block = rng.standard_normal((30, 6))
            keys = backend.ship_shards(
                [{"kind": "dense", "shape": block.shape,
                  "arrays": {"block": block}}]
            )
            backend.kill_worker(0)
            backend.kill_worker(1)
            with pytest.raises(ClusterUnhealthyError):
                backend.run_tasks(
                    [{"key": keys[0], "kernel": "matvec",
                      "operand": rng.standard_normal(6)}]
                )
            assert not backend.healthy
        finally:
            backend.close()


class TestShardedOperatorParity:
    """Every kernel, distributed vs sharded-serial, must be bitwise."""

    @pytest.mark.parametrize("mode", ["dense", "csr"])
    def test_all_kernels_bitwise(self, backend, rng, mode):
        X = rng.standard_normal((600, 40))
        if mode == "csr":
            X[X < 0.6] = 0.0
            X = CSRMatrix.from_dense(X)
        reference = ShardedOperator(X, backend="serial")
        distributed = ShardedOperator(X, backend=backend)
        try:
            v = rng.standard_normal(40)
            u = rng.standard_normal(600)
            V = rng.standard_normal((40, 3))
            U = rng.standard_normal((600, 3))
            assert np.array_equal(distributed.matvec(v), reference.matvec(v))
            assert np.array_equal(distributed.rmatvec(u), reference.rmatvec(u))
            assert np.array_equal(distributed.matmat(V), reference.matmat(V))
            assert np.array_equal(distributed.rmatmat(U), reference.rmatmat(U))
            assert distributed.degraded_from is None
        finally:
            distributed.close()
            reference.close()
