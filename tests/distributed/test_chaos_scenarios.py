"""Chaos scenarios: every injected fault must recover or degrade,
and every recovered fit must be **bitwise identical** to the serial
backend (same shard layout, so the reduction order is the contract).
"""

import warnings

import numpy as np
import pytest

from repro.core.srda import SRDA, srda_alpha_path
from repro.distributed import ChaosBackend, ChaosPlan, DistributedBackend
from repro.linalg.sparse import CSRMatrix
from repro.robustness.report import RobustnessWarning

pytestmark = [pytest.mark.distributed, pytest.mark.chaos, pytest.mark.slow]


@pytest.fixture(scope="module")
def problem():
    """A 600-sample problem — large enough for a multi-shard layout."""
    rng = np.random.default_rng(7)
    dense = rng.standard_normal((600, 80))
    sparse = dense.copy()
    sparse[np.abs(sparse) < 0.8] = 0.0
    X = CSRMatrix.from_dense(sparse)
    y = rng.integers(0, 4, 600)
    return X, y


@pytest.fixture(scope="module")
def reference(problem):
    """The serial-backend fit every scenario must match bitwise."""
    X, y = problem
    model = SRDA(alpha=1.0, solver="lsqr", max_iter=15, tol=0.0,
                 backend="serial")
    model.fit(X, y)
    return model


def _fit_with(backend, problem):
    """Fit through ``backend``; returns (model, stats-before-close)."""
    X, y = problem
    model = SRDA(alpha=1.0, solver="lsqr", max_iter=15, tol=0.0,
                 backend=backend)
    try:
        model.fit(X, y)
        stats = backend.stats()
    finally:
        backend.close()
    return model, stats


def _assert_bitwise(model, reference):
    assert np.array_equal(model.components_, reference.components_)
    assert np.array_equal(model.intercept_, reference.intercept_)


class TestCleanDistributedFit:
    def test_bitwise_and_reported(self, problem, reference):
        backend = DistributedBackend(n_workers=2, heartbeat_interval=0.5)
        model, _ = _fit_with(backend, problem)
        _assert_bitwise(model, reference)
        assert model.fit_report_.backend == "distributed"
        assert "backend=distributed" in model.fit_report_.summary()


class TestWorkerLossRecovery:
    def test_kill_mid_lsqr_is_bitwise(self, problem, reference):
        # Lose worker 0 on the 6th product — deep inside the Lanczos
        # recurrence.  Retry + reassignment must restore the exact
        # numbers: shard layout (and hence reduction order) is
        # unchanged, only the process doing the arithmetic moves.
        inner = DistributedBackend(
            n_workers=2, heartbeat_interval=0.5, task_timeout=10.0
        )
        backend = ChaosBackend(inner, ChaosPlan(kill_at={5: 0}))
        model, stats = _fit_with(backend, problem)
        _assert_bitwise(model, reference)
        assert stats["worker_deaths"] == 1
        assert stats["reassignments"] >= 1
        assert model.fit_report_.backend == "chaos(distributed)"

    def test_kill_at_first_product_is_bitwise(self, problem, reference):
        inner = DistributedBackend(
            n_workers=2, heartbeat_interval=0.5, task_timeout=10.0
        )
        backend = ChaosBackend(inner, ChaosPlan(kill_at={0: 1}))
        model, stats = _fit_with(backend, problem)
        _assert_bitwise(model, reference)
        assert stats["worker_deaths"] == 1


class TestDegradation:
    def test_kill_all_degrades_to_serial_bitwise(self, problem, reference):
        # Losing every worker exhausts recovery; the sharded layer must
        # fall back to its local shard copies and still produce the
        # exact serial numbers, with the ladder recorded on the report.
        inner = DistributedBackend(
            n_workers=2, heartbeat_interval=0.0, task_timeout=2.0,
            max_retries=1,
        )
        backend = ChaosBackend(inner, ChaosPlan(kill_at={4: (0, 1)}))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            model, _ = _fit_with(backend, problem)
        _assert_bitwise(model, reference)
        assert model.fit_report_.backend == "chaos(distributed)->serial"
        assert any(
            issubclass(w.category, RobustnessWarning) for w in caught
        )
        assert any("unhealthy" in note for note in model.fit_report_.warnings)


class TestTransportFaults:
    def test_corrupt_frame_recovers_bitwise(self, problem, reference):
        # Frame 2 on each connection ships corrupted; the worker's CRC
        # check poisons the stream, the supervisor marks it dead, and
        # the survivor (whose early frames already went through clean)
        # adopts the shards.
        backend = DistributedBackend(
            n_workers=2, heartbeat_interval=0.5, task_timeout=5.0,
            chaos=ChaosPlan(corrupt_sends=(2,)),
        )
        model, _ = _fit_with(backend, problem)
        _assert_bitwise(model, reference)

    def test_dropped_frame_recovers_bitwise(self, problem, reference):
        backend = DistributedBackend(
            n_workers=2, heartbeat_interval=0.5, task_timeout=1.5,
            chaos=ChaosPlan(drop_sends=(3,)),
        )
        model, _ = _fit_with(backend, problem)
        _assert_bitwise(model, reference)

    def test_slow_worker_is_bitwise(self, problem, reference):
        # Delays reorder wall-clock completion, never the reduction.
        backend = DistributedBackend(
            n_workers=2, heartbeat_interval=0.5, task_timeout=10.0,
            chaos=ChaosPlan(delay_sends=(1, 4, 9), delay_seconds=0.05),
        )
        model, _ = _fit_with(backend, problem)
        _assert_bitwise(model, reference)


class TestAlphaPath:
    def test_alpha_path_survives_worker_loss(self, problem):
        X, y = problem
        alphas = [0.1, 1.0, 10.0]
        serial = srda_alpha_path(
            X, y, alphas=alphas, max_iter=10, tol=0.0, backend="serial"
        )
        inner = DistributedBackend(
            n_workers=2, heartbeat_interval=0.5, task_timeout=10.0
        )
        backend = ChaosBackend(inner, ChaosPlan(kill_at={3: 0}))
        try:
            chaotic = srda_alpha_path(
                X, y, alphas=alphas, max_iter=10, tol=0.0, backend=backend
            )
            stats = inner.stats()
        finally:
            backend.close()
        for chaotic_model, serial_model in zip(chaotic, serial):
            assert np.array_equal(
                chaotic_model.components_, serial_model.components_
            )
            assert chaotic_model.fit_report_.backend == "chaos(distributed)"
        assert stats["worker_deaths"] == 1
