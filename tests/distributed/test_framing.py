"""Unit tests for the wire protocol (no worker processes)."""

import socket
import struct
import zlib

import numpy as np
import pytest

import repro.distributed.framing as framing
from repro.distributed.chaos import ChaosPlan, ChaosTransport
from repro.distributed.framing import (
    HEADER_BYTES,
    MAGIC,
    MSG_PING,
    MSG_RESULT,
    MSG_TASK,
    PROTOCOL_VERSION,
    Transport,
    build_frame,
    data_frame_types,
)
from repro.exceptions import ProtocolError, TransportError


@pytest.fixture
def pair():
    """Two connected transports over a local socket pair."""
    left_sock, right_sock = socket.socketpair()
    left, right = Transport(left_sock), Transport(right_sock)
    yield left, right
    left.close()
    right.close()


class TestRoundTrip:
    def test_message_round_trip(self, pair):
        left, right = pair
        message = {"task_id": 7, "kernel": "matvec", "note": "héllo"}
        left.send(MSG_TASK, message)
        mtype, received = right.recv(timeout=5.0)
        assert mtype == MSG_TASK
        assert received == message

    def test_ndarray_payload_is_bitwise(self, pair):
        left, right = pair
        array = np.random.default_rng(0).standard_normal((37, 5))[::2]
        left.send(MSG_RESULT, {"array": array})
        _, received = right.recv(timeout=5.0)
        out = received["array"]
        assert out.dtype == array.dtype
        assert out.shape == array.shape
        assert np.array_equal(out, array)

    def test_byte_counters_count_full_frames(self, pair):
        left, right = pair
        frame = build_frame(MSG_PING, {"nonce": 1})
        left.send(MSG_PING, {"nonce": 1})
        right.recv(timeout=5.0)
        assert left.bytes_sent == len(frame)
        assert right.bytes_received == len(frame)

    def test_close_is_idempotent(self, pair):
        left, _ = pair
        left.close()
        left.close()


class TestFrameValidation:
    def test_header_layout(self):
        frame = build_frame(MSG_TASK, {"x": 1})
        magic, version, mtype, length, crc = struct.Struct("!4sBBQI").unpack(
            frame[:HEADER_BYTES]
        )
        assert magic == MAGIC
        assert version == PROTOCOL_VERSION
        assert mtype == MSG_TASK
        assert length == len(frame) - HEADER_BYTES
        assert crc == zlib.crc32(frame[HEADER_BYTES:])

    def _send_raw(self, pair, raw):
        left, right = pair
        left.sock.sendall(raw)
        return right

    def test_bad_magic_rejected(self, pair):
        frame = bytearray(build_frame(MSG_TASK, {}))
        frame[:4] = b"XXXX"
        right = self._send_raw(pair, bytes(frame))
        with pytest.raises(ProtocolError, match="magic"):
            right.recv(timeout=5.0)

    def test_bad_version_rejected(self, pair):
        frame = bytearray(build_frame(MSG_TASK, {}))
        frame[4] = PROTOCOL_VERSION + 1
        right = self._send_raw(pair, bytes(frame))
        with pytest.raises(ProtocolError, match="version"):
            right.recv(timeout=5.0)

    def test_oversize_length_prefix_rejected(self, pair):
        # A corrupt length prefix must fail fast, not allocate gigabytes.
        header = struct.Struct("!4sBBQI").pack(
            MAGIC, PROTOCOL_VERSION, MSG_TASK, framing.MAX_PAYLOAD_BYTES + 1, 0
        )
        right = self._send_raw(pair, header)
        with pytest.raises(ProtocolError, match="length prefix"):
            right.recv(timeout=5.0)

    def test_crc_mismatch_rejected(self, pair):
        frame = bytearray(build_frame(MSG_TASK, {"value": 123456}))
        frame[-1] ^= 0x01  # flip one payload bit; header CRC is stale
        right = self._send_raw(pair, bytes(frame))
        with pytest.raises(ProtocolError, match="CRC"):
            right.recv(timeout=5.0)

    def test_oversize_send_refused(self, monkeypatch):
        monkeypatch.setattr(framing, "MAX_PAYLOAD_BYTES", 8)
        with pytest.raises(ProtocolError, match="refusing to send"):
            build_frame(MSG_TASK, {"payload": "far too large"})

    def test_eof_is_transport_error(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(TransportError, match="closed"):
            right.recv(timeout=5.0)

    def test_timeout_is_transport_error(self, pair):
        _, right = pair
        with pytest.raises(TransportError, match="timed out"):
            right.recv(timeout=0.05)

    def test_truncated_frame_is_transport_error(self, pair):
        left, right = pair
        frame = build_frame(MSG_TASK, {"value": 1})
        left.sock.sendall(frame[:-3])
        left.close()
        with pytest.raises(TransportError):
            right.recv(timeout=5.0)


class TestChaosTransport:
    def _chaos_pair(self, plan):
        left_sock, right_sock = socket.socketpair()
        return ChaosTransport(left_sock, plan), Transport(right_sock)

    def test_corrupt_send_caught_by_receiver_crc(self):
        left, right = self._chaos_pair(ChaosPlan(corrupt_sends=(0,)))
        try:
            left.send(MSG_TASK, {"value": 42})
            with pytest.raises(ProtocolError, match="CRC"):
                right.recv(timeout=5.0)
        finally:
            left.close()
            right.close()

    def test_dropped_send_times_out(self):
        left, right = self._chaos_pair(ChaosPlan(drop_sends=(0,)))
        try:
            left.send(MSG_TASK, {"value": 42})
            with pytest.raises(TransportError, match="timed out"):
                right.recv(timeout=0.05)
        finally:
            left.close()
            right.close()

    def test_only_data_frames_advance_the_schedule(self):
        # Heartbeat chatter must not consume trigger index 0: the PING
        # sails through untouched and the first TASK is the one dropped.
        assert MSG_PING not in data_frame_types()
        left, right = self._chaos_pair(ChaosPlan(drop_sends=(0,)))
        try:
            left.send(MSG_PING, {"nonce": 9})
            assert right.recv(timeout=5.0) == (MSG_PING, {"nonce": 9})
            left.send(MSG_TASK, {"value": 1})
            with pytest.raises(TransportError):
                right.recv(timeout=0.05)
        finally:
            left.close()
            right.close()

    def test_later_frames_unaffected(self):
        left, right = self._chaos_pair(ChaosPlan(drop_sends=(0,)))
        try:
            left.send(MSG_TASK, {"value": "lost"})
            left.send(MSG_TASK, {"value": "kept"})
            assert right.recv(timeout=5.0) == (MSG_TASK, {"value": "kept"})
        finally:
            left.close()
            right.close()

    def test_probabilistic_schedule_is_seeded(self):
        # Same seed -> same drop decisions, run to run.
        def decisions(seed):
            plan = ChaosPlan(seed=seed, p_drop=0.5)
            left, right = self._chaos_pair(plan)
            try:
                received = []
                for index in range(12):
                    left.send(MSG_TASK, {"index": index})
                left.sock.sendall(b"")
                right.sock.settimeout(0.2)
                while True:
                    try:
                        received.append(right.recv(timeout=0.2)[1]["index"])
                    except TransportError:
                        break
                return received
            finally:
                left.close()
                right.close()

        assert decisions(3) == decisions(3)
        assert decisions(3) != decisions(4)

    def test_wants_transport(self):
        assert not ChaosPlan(kill_at={0: 1}).wants_transport()
        assert ChaosPlan(corrupt_sends=(1,)).wants_transport()
        assert ChaosPlan(p_delay=0.5).wants_transport()
