"""Experiment-layer resilience: a dying cluster mid-grid must either
be recorded as a cell failure (continue_on_error) or leave a resumable
checkpoint behind — never corrupt the sweep.
"""

import numpy as np
import pytest

from repro.core.srda import SRDA
from repro.datasets import Dataset
from repro.distributed import ChaosBackend, ChaosPlan, DistributedBackend
from repro.eval.experiment import run_experiment
from repro.exceptions import ClusterUnhealthyError

pytestmark = [pytest.mark.distributed, pytest.mark.chaos, pytest.mark.slow]


@pytest.fixture
def dataset():
    """3 classes x 250 samples: train size 180/class -> 540 rows, so the
    shard layout is multi-shard and the distributed path is exercised."""
    rng = np.random.default_rng(11)
    X = np.vstack(
        [rng.standard_normal((250, 12)) + 2.5 * k for k in range(3)]
    )
    y = np.repeat(np.arange(3), 250)
    return Dataset(
        "resilience", X, y,
        metadata={"split_protocol": "per_class_within",
                  "train_sizes": [180]},
    )


def _doomed_srda():
    """An SRDA whose cluster loses every worker on the first product
    and is configured to raise instead of degrade."""
    inner = DistributedBackend(
        n_workers=2, heartbeat_interval=0.0, task_timeout=2.0,
        max_retries=1, on_unhealthy="raise",
    )
    backend = ChaosBackend(inner, ChaosPlan(kill_at={0: (0, 1)}))
    return SRDA(alpha=1.0, solver="lsqr", max_iter=5, tol=0.0,
                backend=backend)


def _healthy_srda():
    return SRDA(alpha=1.0, solver="lsqr", max_iter=5, tol=0.0,
                backend="serial")


class TestFailureRecording:
    def test_transport_failure_lands_in_failure_type(self, dataset):
        result = run_experiment(
            dataset,
            {"SRDA-dist": _doomed_srda, "SRDA": _healthy_srda},
            n_splits=1,
            seed=0,
            continue_on_error=True,
        )
        doomed = result.cell("SRDA-dist", "180")
        assert doomed.failed
        assert doomed.failure_type == "ClusterUnhealthyError"
        assert "ClusterUnhealthyError" in doomed.failure
        healthy = result.cell("SRDA", "180")
        assert not healthy.failed
        assert len(healthy.errors) == 1


class TestCheckpointResume:
    def test_resume_completes_the_grid(self, dataset, tmp_path):
        ckpt = tmp_path / "sweep.json"
        calls = {"count": 0}

        def flaky_factory():
            # Split 0 fits cleanly; split 1's cluster dies mid-fit.
            calls["count"] += 1
            return _healthy_srda() if calls["count"] == 1 else _doomed_srda()

        with pytest.raises(ClusterUnhealthyError):
            run_experiment(
                dataset,
                {"SRDA": flaky_factory},
                n_splits=2,
                seed=0,
                checkpoint_path=ckpt,
            )
        # Split 0 completed before the crash, so its progress survives.
        assert ckpt.exists()

        resumed = run_experiment(
            dataset,
            {"SRDA": _healthy_srda},
            n_splits=2,
            seed=0,
            checkpoint_path=ckpt,
        )
        reference = run_experiment(
            dataset,
            {"SRDA": _healthy_srda},
            n_splits=2,
            seed=0,
        )
        cell = resumed.cell("SRDA", "180")
        assert not cell.failed
        assert cell.errors == reference.cell("SRDA", "180").errors
        assert not ckpt.exists()  # removed on successful completion
