"""Integration across the spectral-regression family.

Every member shares the same two-step skeleton — spectral responses,
then regression — and must behave consistently on a common problem.
"""

import numpy as np
import pytest

from repro import (
    KernelSRDA,
    SemiSupervisedSRDA,
    SparseSRDA,
    SpectralRegressionEmbedding,
    SRDA,
)
from repro.eval.classifiers import NearestCentroid


@pytest.fixture(scope="module")
def family_problem():
    rng = np.random.default_rng(99)
    centers = 5.0 * rng.standard_normal((4, 18))
    y = np.repeat(np.arange(4), 30)
    X = centers[y] + 1.2 * rng.standard_normal((120, 18))
    X_test = centers[y] + 1.2 * rng.standard_normal((120, 18))
    return X, y, X_test


class TestFamilyConsistency:
    def test_all_supervised_members_classify_well(self, family_problem):
        X, y, X_test = family_problem
        members = {
            "SRDA": SRDA(alpha=1.0),
            "KernelSRDA": KernelSRDA(alpha=1.0, kernel="linear"),
            "SparseSRDA": SparseSRDA(alpha=0.3, l1_ratio=0.8),
        }
        for name, model in members.items():
            model.fit(X, y)
            assert model.score(X_test, y) > 0.9, name

    def test_embeddings_expose_the_same_class_structure(self, family_problem):
        """All supervised members' embeddings classify equally well
        through an external nearest-centroid read-out."""
        X, y, X_test = family_problem
        for model in (
            SRDA(alpha=1.0),
            SparseSRDA(alpha=0.3, l1_ratio=0.8),
            KernelSRDA(alpha=1.0, kernel="linear"),
        ):
            model.fit(X, y)
            Z_train = model.transform(X)
            Z_test = model.transform(X_test)
            readout = NearestCentroid().fit(Z_train, y)
            assert readout.score(Z_test, y) > 0.9, type(model).__name__

    def test_semi_supervised_approaches_supervised_with_all_labels(
        self, family_problem
    ):
        X, y, X_test = family_problem
        fully = SemiSupervisedSRDA(alpha=1.0, supervised_weight=10.0,
                                   n_neighbors=7).fit(X, y)
        supervised = SRDA(alpha=1.0).fit(X, y)
        assert fully.score(X_test, y) >= supervised.score(X_test, y) - 0.05

    def test_unsupervised_embedding_is_class_informative(self, family_problem):
        """Even without labels, the spectral embedding supports an
        after-the-fact centroid classifier well above chance."""
        X, y, X_test = family_problem
        embedding = SpectralRegressionEmbedding(
            n_components=3, n_neighbors=8
        ).fit(X)
        readout = NearestCentroid().fit(embedding.transform(X), y)
        accuracy = readout.score(embedding.transform(X_test), y)
        assert accuracy > 0.6  # chance = 0.25

    def test_shared_responses_across_supervised_members(self, family_problem):
        """SRDA and SparseSRDA literally share the spectral step."""
        from repro.core.responses import generate_responses

        X, y, _ = family_problem
        srda = SRDA(alpha=1.0).fit(X, y)
        expected = generate_responses(y, 4)
        assert np.allclose(srda.responses_, expected)

    def test_all_members_reject_single_class(self, family_problem):
        X, _, _ = family_problem
        y_bad = np.zeros(X.shape[0], dtype=int)
        for model in (
            SRDA(),
            SparseSRDA(),
            KernelSRDA(),
        ):
            with pytest.raises(ValueError):
                model.fit(X, y_bad)
