"""Integration tests of the paper's equivalence claims across modules."""

import numpy as np
import pytest

from repro import LDA, RLDA, SRDA
from repro.core.graph import lda_weight_matrix
from repro.core.responses import generate_responses
from repro.linalg.lsqr import lsqr
from repro.linalg.operators import (
    AppendOnesOperator,
    CenteringOperator,
    as_operator,
)
from repro.linalg.sparse import CSRMatrix


class TestAppendOnesEqualsCentering:
    """Section III-B: appending a constant feature and fitting a bias is
    equivalent (for predictions) to regressing on centered data."""

    def test_fitted_values_agree_in_alpha_zero_limit(self, rng):
        m, n = 25, 8
        X = rng.standard_normal((m, n))
        y = np.arange(m) % 3
        responses = generate_responses(y, 3)
        ybar = responses[:, 0]

        # path 1: augmented, un-centered
        aug = np.hstack([X, np.ones((m, 1))])
        a_aug = np.linalg.lstsq(aug, ybar, rcond=None)[0]
        fitted_aug = aug @ a_aug

        # path 2: centered, no bias (ȳ ⊥ 1 so no target centering needed)
        centered = X - X.mean(axis=0)
        a_cen = np.linalg.lstsq(centered, ybar, rcond=None)[0]
        fitted_cen = centered @ a_cen

        assert np.allclose(fitted_aug, fitted_cen, atol=1e-8)

    def test_operator_paths_agree_via_lsqr(self, rng):
        m, n = 30, 10
        dense = rng.standard_normal((m, n))
        dense[np.abs(dense) < 0.7] = 0.0
        csr = CSRMatrix.from_dense(dense)
        y = np.arange(m) % 4
        ybar = generate_responses(y, 4)[:, 0]

        aug_result = lsqr(
            AppendOnesOperator(as_operator(csr)), ybar,
            atol=1e-13, btol=1e-13, iter_lim=3000,
        )
        cen_result = lsqr(
            CenteringOperator(as_operator(csr)), ybar,
            atol=1e-13, btol=1e-13, iter_lim=3000,
        )
        fitted_aug = np.hstack([dense, np.ones((m, 1))]) @ aug_result.x
        fitted_cen = (dense - dense.mean(axis=0)) @ cen_result.x
        assert np.allclose(fitted_aug, fitted_cen, atol=1e-6)


class TestSRDAvsRLDAvsLDA:
    def test_all_three_match_in_the_oversampled_zero_alpha_limit(self, rng):
        """m ≫ n with nonsingular scatter: LDA is well posed and both
        regularized methods converge to it as α → 0 — compare embedding
        subspaces via projection operators on the data."""
        m, n, c = 120, 8, 3
        centers = 4.0 * rng.standard_normal((c, n))
        y = np.repeat(np.arange(c), m // c)
        X = centers[y] + rng.standard_normal((m, n))

        Z_lda = LDA().fit(X, y).transform(X)
        Z_rlda = RLDA(alpha=1e-9).fit(X, y).transform(X)
        Z_srda = SRDA(alpha=1e-9, solver="normal").fit_transform(X, y)

        def projector(Z):
            Q, _ = np.linalg.qr(Z - Z.mean(axis=0))
            return Q @ Q.T

        # all three embeddings span the same 2-D subspace of sample space
        P_lda = projector(Z_lda)
        assert np.abs(P_lda - projector(Z_rlda)).max() < 1e-4
        assert np.abs(P_lda - projector(Z_srda)).max() < 1e-4

    def test_srda_predictions_match_lda_on_separable_data(self, rng):
        m, n, c = 90, 12, 3
        centers = 6.0 * rng.standard_normal((c, n))
        y = np.repeat(np.arange(c), m // c)
        X = centers[y] + rng.standard_normal((m, n))
        X_new = centers[y] + rng.standard_normal((m, n))
        lda_pred = LDA().fit(X, y).predict(X_new)
        srda_pred = SRDA(alpha=1e-8, solver="normal").fit(X, y).predict(X_new)
        assert np.mean(lda_pred == srda_pred) > 0.97


class TestGraphViewMatchesScatterView:
    def test_lda_from_graph_matrix_matches_baseline(self, rng):
        """Solve the LDA eigenproblem directly from the W-matrix
        formulation (Eqn 8) with dense tools and compare to the SVD-route
        baseline."""
        from repro.linalg.dense import generalized_eigh

        m, n, c = 40, 6, 3
        y = np.arange(m) % c
        X = rng.standard_normal((m, n)) + 2.0 * rng.standard_normal((c, n))[y]
        centered = X - X.mean(axis=0)
        W = lda_weight_matrix(y, c)
        Sb = centered.T @ W @ centered
        St = centered.T @ centered
        eigvals, eigvecs = generalized_eigh(Sb, St, regularization=1e-10)

        baseline = LDA().fit(X, y)
        assert np.allclose(
            eigvals[: c - 1], baseline.eigenvalues_, atol=1e-5
        )
        Q1, _ = np.linalg.qr(eigvecs[:, : c - 1])
        Q2, _ = np.linalg.qr(baseline.components_)
        assert np.abs(Q1 @ Q1.T - Q2 @ Q2.T).max() < 1e-4


class TestLSQRIterationSufficiency:
    def test_twenty_iterations_near_converged(self, rng):
        """'LSQR converges very fast ... 20 iterations are enough': after
        20 iterations the SRDA components must be close to the exact
        ridge solution on a realistic-shaped problem."""
        m, n, c = 200, 300, 5
        y = np.arange(m) % c
        X = rng.standard_normal((m, n)) + rng.standard_normal((c, n))[y]
        exact = SRDA(alpha=1.0, solver="normal").fit(X, y)
        iterative = SRDA(alpha=1.0, solver="lsqr", max_iter=20, tol=0.0).fit(X, y)
        # compare embeddings (what matters downstream)
        Z_exact = exact.transform(X)
        Z_iter = iterative.transform(X)
        rel = np.linalg.norm(Z_exact - Z_iter) / np.linalg.norm(Z_exact)
        assert rel < 0.05
        assert np.mean(exact.predict(X) == iterative.predict(X)) > 0.98
