"""Integration tests across modules: the full paper pipeline in miniature."""

import numpy as np
import pytest

from repro import IDRQR, LDA, RLDA, SRDA
from repro.datasets import make_digits, make_faces, make_text
from repro.eval import figure_series, format_error_table, run_experiment


ALGOS = {
    "LDA": lambda: LDA(),
    "RLDA": lambda: RLDA(alpha=1.0),
    "SRDA": lambda: SRDA(alpha=1.0),
    "IDR/QR": lambda: IDRQR(alpha=1.0),
}


class TestMiniaturePaperPipeline:
    @pytest.fixture(scope="class")
    def face_result(self):
        dataset = make_faces(n_subjects=10, images_per_subject=30, side=32,
                             seed=11)
        return run_experiment(
            dataset, ALGOS, train_sizes=[5, 12], n_splits=3, seed=0
        )

    def test_all_cells_ran(self, face_result):
        assert not any(cell.failed for cell in face_result.cells.values())

    def test_regularized_methods_win_at_small_sample(self, face_result):
        """The paper's main qualitative claim, in miniature: with few
        training samples per class, RLDA and SRDA beat plain LDA.  (At
        this reduced scale the gap opens at 12/class; the benchmark
        suite checks the full grid.)"""
        lda_error = face_result.cell("LDA", "12").mean_error
        assert face_result.cell("SRDA", "12").mean_error < lda_error
        assert face_result.cell("RLDA", "12").mean_error < lda_error

    def test_errors_fall_with_more_data(self, face_result):
        for algo in ALGOS:
            small = face_result.cell(algo, "5").mean_error
            large = face_result.cell(algo, "12").mean_error
            assert large <= small + 0.05, algo

    def test_table_renders(self, face_result):
        table = format_error_table(face_result)
        assert "SRDA" in table and "IDR/QR" in table

    def test_figure_series_complete(self, face_result):
        series = figure_series(face_result, "time")
        assert set(series) == set(ALGOS)
        for xs, ys in series.values():
            assert len(xs) == len(ys) == 2


class TestSparseTextPipeline:
    def test_srda_runs_where_dense_methods_are_blocked(self):
        dataset = make_text(n_docs=400, vocab_size=3000, seed=4)
        budget = 2_000_000.0  # bytes — tight enough to block dense methods
        result = run_experiment(
            dataset,
            {
                "LDA": lambda: LDA(),
                "SRDA": lambda: SRDA(alpha=1.0, solver="lsqr", max_iter=15),
            },
            train_sizes=[0.2],
            n_splits=2,
            seed=0,
            memory_budget_bytes=budget,
        )
        assert result.cell("LDA", "20%").failed
        srda_cell = result.cell("SRDA", "20%")
        assert not srda_cell.failed
        assert srda_cell.mean_error < 0.5

    def test_srda_never_densifies_sparse_input(self):
        """fit must not allocate an (m, n) dense array for CSR input —
        proxied by checking the solver path and that the input object is
        untouched."""
        dataset = make_text(n_docs=200, vocab_size=2000, seed=5)
        nnz_before = dataset.X.nnz
        model = SRDA(alpha=1.0, solver="auto").fit(dataset.X, dataset.y)
        assert model.solver_used_ == "lsqr"
        assert dataset.X.nnz == nnz_before


class TestCrossAlgorithmConsistency:
    def test_all_methods_agree_on_easy_data(self, rng):
        centers = 10.0 * rng.standard_normal((4, 20))
        y = np.repeat(np.arange(4), 15)
        X = centers[y] + 0.3 * rng.standard_normal((60, 20))
        X_test = centers[y] + 0.3 * rng.standard_normal((60, 20))
        for name, factory in ALGOS.items():
            model = factory().fit(X, y)
            assert model.score(X_test, y) == 1.0, name

    def test_embeddings_have_equivalent_class_separation(self, rng):
        """On well-separated data every method's embedding groups classes:
        within-class distances ≪ between-class distances."""
        centers = 8.0 * rng.standard_normal((3, 15))
        y = np.repeat(np.arange(3), 20)
        X = centers[y] + 0.5 * rng.standard_normal((60, 15))
        for name, factory in ALGOS.items():
            Z = factory().fit(X, y).transform(X)
            within = np.mean(
                [np.std(Z[y == k], axis=0).mean() for k in range(3)]
            )
            centroids = np.vstack([Z[y == k].mean(axis=0) for k in range(3)])
            between = np.linalg.norm(
                centroids[:, None] - centroids[None, :], axis=-1
            ).max()
            assert between > 5 * within, name


class TestDigitsPoolProtocol:
    def test_fixed_test_pool_used(self):
        dataset = make_digits(n_train=150, n_test=100, side=14, seed=6)
        result = run_experiment(
            dataset, {"SRDA": lambda: SRDA(alpha=1.0)},
            train_sizes=[5], n_splits=2, seed=1,
        )
        cell = result.cell("SRDA", "5")
        assert len(cell.errors) == 2
        assert all(0 <= e <= 1 for e in cell.errors)
