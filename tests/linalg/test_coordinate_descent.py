"""Unit tests for the elastic-net coordinate-descent solver."""

import numpy as np
import pytest

from repro.linalg.coordinate_descent import (
    elastic_net,
    elastic_net_path,
    soft_threshold,
)
from repro.linalg.sparse import CSRMatrix


class TestSoftThreshold:
    def test_shrinks_positive(self):
        assert soft_threshold(3.0, 1.0) == 2.0

    def test_shrinks_negative(self):
        assert soft_threshold(-3.0, 1.0) == -2.0

    def test_zeroes_small_values(self):
        assert soft_threshold(0.5, 1.0) == 0.0
        assert soft_threshold(-0.5, 1.0) == 0.0

    def test_zero_threshold_is_identity(self):
        assert soft_threshold(1.7, 0.0) == 1.7


class TestElasticNet:
    def test_ridge_limit_matches_closed_form(self, rng):
        X = rng.standard_normal((30, 10))
        y = rng.standard_normal(30)
        alpha = 1.5
        result = elastic_net(X, y, alpha, l1_ratio=0.0, max_iter=5000,
                             tol=1e-12)
        expected = np.linalg.solve(
            X.T @ X + alpha * np.eye(10), X.T @ y
        )
        assert np.allclose(result.coef, expected, atol=1e-8)
        assert result.converged

    def test_lasso_kkt_conditions(self, rng):
        X = rng.standard_normal((40, 12))
        y = rng.standard_normal(40)
        alpha = 1.0
        result = elastic_net(X, y, alpha, l1_ratio=1.0, max_iter=5000,
                             tol=1e-12)
        gradient = X.T @ (X @ result.coef - y)
        for j in range(12):
            if result.coef[j] != 0.0:
                assert abs(gradient[j] + np.sign(result.coef[j]) * alpha) < 1e-6
            else:
                assert abs(gradient[j]) <= alpha + 1e-6

    def test_zero_penalty_matches_lstsq(self, rng):
        X = rng.standard_normal((30, 8))
        y = rng.standard_normal(30)
        result = elastic_net(X, y, 0.0, max_iter=20000, tol=1e-13)
        expected = np.linalg.lstsq(X, y, rcond=None)[0]
        assert np.allclose(result.coef, expected, atol=1e-6)

    def test_huge_penalty_gives_zero(self, rng):
        X = rng.standard_normal((20, 6))
        y = rng.standard_normal(20)
        result = elastic_net(X, y, 1e8, l1_ratio=1.0)
        assert np.array_equal(result.coef, np.zeros(6))
        assert result.n_nonzero == 0

    def test_sparsity_increases_with_alpha(self, rng):
        X = rng.standard_normal((50, 20))
        y = X[:, 0] + 0.5 * X[:, 1] + 0.1 * rng.standard_normal(50)
        nnz = [
            elastic_net(X, y, alpha, l1_ratio=1.0, max_iter=3000).n_nonzero
            for alpha in (0.01, 1.0, 10.0)
        ]
        assert nnz[0] >= nnz[1] >= nnz[2]

    def test_recovers_true_support(self, rng):
        X = rng.standard_normal((80, 25))
        coefficients = np.zeros(25)
        coefficients[[2, 7, 11]] = [3.0, -2.0, 4.0]
        y = X @ coefficients + 0.05 * rng.standard_normal(80)
        result = elastic_net(X, y, 2.0, l1_ratio=1.0, max_iter=3000)
        support = set(np.flatnonzero(result.coef))
        assert {2, 7, 11} <= support
        assert len(support) <= 8

    def test_sparse_input_matches_dense(self, rng):
        dense = rng.standard_normal((30, 12))
        dense[np.abs(dense) < 0.7] = 0.0
        y = rng.standard_normal(30)
        a = elastic_net(dense, y, 0.8, l1_ratio=0.6, max_iter=5000,
                        tol=1e-12)
        b = elastic_net(CSRMatrix.from_dense(dense), y, 0.8, l1_ratio=0.6,
                        max_iter=5000, tol=1e-12)
        assert np.allclose(a.coef, b.coef, atol=1e-10)

    def test_warm_start_converges_faster(self, rng):
        X = rng.standard_normal((40, 15))
        y = rng.standard_normal(40)
        cold = elastic_net(X, y, 0.5, l1_ratio=0.9, max_iter=5000, tol=1e-10)
        warm = elastic_net(X, y, 0.5, l1_ratio=0.9, max_iter=5000,
                           tol=1e-10, coef_init=cold.coef)
        assert warm.n_iter <= cold.n_iter
        assert np.allclose(warm.coef, cold.coef, atol=1e-8)

    def test_validation(self, rng):
        X = rng.standard_normal((10, 4))
        y = rng.standard_normal(10)
        with pytest.raises(ValueError):
            elastic_net(X, y, -1.0)
        with pytest.raises(ValueError):
            elastic_net(X, y, 1.0, l1_ratio=1.5)
        with pytest.raises(ValueError):
            elastic_net(X, np.ones(9), 1.0)
        with pytest.raises(ValueError):
            elastic_net(X, y, 1.0, coef_init=np.ones(5))

    def test_constant_zero_column_ignored(self, rng):
        X = rng.standard_normal((20, 5))
        X[:, 3] = 0.0
        y = rng.standard_normal(20)
        result = elastic_net(X, y, 1.0, l1_ratio=1.0, max_iter=2000)
        assert result.coef[3] == 0.0


class TestPath:
    def test_path_shape_and_warm_start_consistency(self, rng):
        X = rng.standard_normal((40, 10))
        y = rng.standard_normal(40)
        alphas = np.array([5.0, 1.0, 0.2])
        path = elastic_net_path(X, y, alphas, l1_ratio=1.0, max_iter=5000,
                                tol=1e-11)
        assert path.shape == (3, 10)
        # each path point matches an independent cold solve
        for alpha, coef in zip(alphas, path):
            cold = elastic_net(X, y, float(alpha), l1_ratio=1.0,
                               max_iter=5000, tol=1e-11)
            assert np.allclose(coef, cold.coef, atol=1e-6)

    def test_increasing_alphas_rejected(self, rng):
        X = rng.standard_normal((10, 3))
        y = rng.standard_normal(10)
        with pytest.raises(ValueError):
            elastic_net_path(X, y, np.array([1.0, 2.0]))

    def test_sparsity_monotone_along_path(self, rng):
        X = rng.standard_normal((60, 20))
        y = X[:, :3] @ np.array([2.0, -1.0, 3.0]) + 0.1 * rng.standard_normal(60)
        alphas = np.array([20.0, 5.0, 1.0, 0.1])
        path = elastic_net_path(X, y, alphas, l1_ratio=1.0, max_iter=3000)
        nnz = [np.count_nonzero(p) for p in path]
        assert nnz[0] <= nnz[-1]
