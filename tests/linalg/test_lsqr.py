"""Unit tests for the from-scratch LSQR solver."""

import numpy as np
import pytest
from scipy.sparse.linalg import lsqr as scipy_lsqr

from repro.linalg.lsqr import LSQRResult, lsqr, lsqr_flam_per_iteration
from repro.linalg.operators import as_operator
from repro.linalg.sparse import CSRMatrix


class TestExactSolutions:
    def test_square_nonsingular(self, rng):
        A = rng.standard_normal((12, 12)) + 4.0 * np.eye(12)
        x_true = rng.standard_normal(12)
        result = lsqr(A, A @ x_true, atol=1e-13, btol=1e-13, iter_lim=500)
        assert np.allclose(result.x, x_true, atol=1e-7)

    def test_overdetermined_matches_lstsq(self, rng):
        A = rng.standard_normal((40, 12))
        b = rng.standard_normal(40)
        result = lsqr(A, b, atol=1e-13, btol=1e-13, iter_lim=500)
        expected = np.linalg.lstsq(A, b, rcond=None)[0]
        assert np.allclose(result.x, expected, atol=1e-8)

    def test_underdetermined_minimum_norm(self, rng):
        A = rng.standard_normal((8, 25))
        b = rng.standard_normal(8)
        result = lsqr(A, b, atol=1e-13, btol=1e-13, iter_lim=500)
        expected = np.linalg.lstsq(A, b, rcond=None)[0]
        assert np.allclose(result.x, expected, atol=1e-8)

    def test_damped_matches_ridge(self, rng):
        A = rng.standard_normal((30, 10))
        b = rng.standard_normal(30)
        alpha = 0.8
        result = lsqr(
            A, b, damp=np.sqrt(alpha), atol=1e-13, btol=1e-13, iter_lim=500
        )
        ridge = np.linalg.solve(A.T @ A + alpha * np.eye(10), A.T @ b)
        assert np.allclose(result.x, ridge, atol=1e-8)

    def test_matches_scipy_lsqr(self, rng):
        A = rng.standard_normal((25, 10))
        b = rng.standard_normal(25)
        ours = lsqr(A, b, damp=0.5, atol=1e-12, btol=1e-12, iter_lim=500)
        theirs = scipy_lsqr(A, b, damp=0.5, atol=1e-12, btol=1e-12)[0]
        assert np.allclose(ours.x, theirs, atol=1e-7)

    def test_zero_rhs_returns_zero(self, rng):
        A = rng.standard_normal((10, 4))
        result = lsqr(A, np.zeros(10))
        assert np.array_equal(result.x, np.zeros(4))
        assert result.itn == 0


class TestSparseAndOperators:
    def test_sparse_equals_dense(self, rng):
        dense = rng.standard_normal((30, 15))
        dense[rng.random((30, 15)) < 0.6] = 0.0
        b = rng.standard_normal(30)
        from_dense = lsqr(dense, b, atol=1e-13, btol=1e-13, iter_lim=500)
        from_sparse = lsqr(
            CSRMatrix.from_dense(dense), b, atol=1e-13, btol=1e-13,
            iter_lim=500,
        )
        assert np.allclose(from_dense.x, from_sparse.x, atol=1e-9)

    def test_operator_input(self, rng):
        A = rng.standard_normal((20, 8))
        b = rng.standard_normal(20)
        result = lsqr(as_operator(A), b, atol=1e-13, btol=1e-13, iter_lim=300)
        expected = np.linalg.lstsq(A, b, rcond=None)[0]
        assert np.allclose(result.x, expected, atol=1e-8)

    def test_product_count_is_two_per_iteration(self, rng):
        A = as_operator(rng.standard_normal((20, 8)))
        result = lsqr(A, rng.standard_normal(20), iter_lim=7, atol=0, btol=0)
        # one matvec + one rmatvec per iteration, plus one rmatvec setup
        assert A.n_matvec == result.itn
        assert A.n_rmatvec == result.itn + 1


class TestStoppingAndTelemetry:
    def test_iteration_limit_respected(self, rng):
        A = rng.standard_normal((50, 30))
        result = lsqr(A, rng.standard_normal(50), iter_lim=5, atol=0, btol=0)
        assert result.itn == 5
        assert result.istop == 7

    def test_converged_istop(self, rng):
        A = rng.standard_normal((20, 5))
        x_true = rng.standard_normal(5)
        result = lsqr(A, A @ x_true, atol=1e-10, btol=1e-10, iter_lim=200)
        assert result.istop in (1, 2)

    def test_residual_history(self, rng):
        A = rng.standard_normal((30, 10))
        b = rng.standard_normal(30)
        result = lsqr(A, b, iter_lim=15, atol=0, btol=0, record_history=True)
        assert len(result.residual_history) == result.itn
        # residuals are non-increasing (LSQR is monotone in r2norm)
        history = np.asarray(result.residual_history)
        assert np.all(np.diff(history) <= 1e-10)

    def test_history_off_by_default(self, rng):
        A = rng.standard_normal((10, 4))
        result = lsqr(A, rng.standard_normal(10), iter_lim=5)
        assert result.residual_history == []

    def test_result_fields_finite(self, rng):
        A = rng.standard_normal((15, 6))
        result = lsqr(A, rng.standard_normal(15), iter_lim=50)
        assert isinstance(result, LSQRResult)
        for name in ("r1norm", "r2norm", "anorm", "acond", "arnorm", "xnorm"):
            assert np.isfinite(getattr(result, name)), name

    def test_warm_start_converges_faster(self, rng):
        A = rng.standard_normal((60, 20))
        b = rng.standard_normal(60)
        cold = lsqr(A, b, atol=1e-10, btol=1e-10, iter_lim=500)
        warm = lsqr(A, b, x0=cold.x, atol=1e-10, btol=1e-10, iter_lim=500)
        assert warm.itn <= cold.itn
        assert np.allclose(warm.x, cold.x, atol=1e-6)


class TestValidation:
    def test_wrong_b_length(self, rng):
        with pytest.raises(ValueError):
            lsqr(rng.standard_normal((5, 3)), np.ones(6))

    def test_negative_damp(self, rng):
        with pytest.raises(ValueError):
            lsqr(rng.standard_normal((5, 3)), np.ones(5), damp=-1.0)

    def test_wrong_x0_length(self, rng):
        with pytest.raises(ValueError):
            lsqr(rng.standard_normal((5, 3)), np.ones(5), x0=np.ones(4))

    def test_flam_model(self):
        assert lsqr_flam_per_iteration(10, 4) == 2 * 40 + 30 + 20
        assert lsqr_flam_per_iteration(10, 4, nnz=12) == 24 + 30 + 20
