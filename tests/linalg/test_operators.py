"""Unit tests for matrix-free operators (the paper's memory tricks)."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.linalg.operators import (
    AppendOnesOperator,
    CSROperator,
    CenteringOperator,
    DenseOperator,
    IdentityOperator,
    ScaledOperator,
    StackedOperator,
    TransposedOperator,
    as_operator,
)
from repro.linalg.sparse import CSRMatrix


@pytest.fixture
def dense(rng):
    return rng.standard_normal((8, 5))


class TestDenseOperator:
    def test_products_match(self, rng, dense):
        op = DenseOperator(dense)
        v = rng.standard_normal(5)
        u = rng.standard_normal(8)
        assert np.allclose(op.matvec(v), dense @ v)
        assert np.allclose(op.rmatvec(u), dense.T @ u)

    def test_matmat_and_rmatmat(self, rng, dense):
        op = DenseOperator(dense)
        B = rng.standard_normal((5, 3))
        C = rng.standard_normal((8, 2))
        assert np.allclose(op.matmat(B), dense @ B)
        assert np.allclose(op.rmatmat(C), dense.T @ C)

    def test_to_dense(self, dense):
        assert np.allclose(DenseOperator(dense).to_dense(), dense)

    def test_shape_validation(self, dense):
        op = DenseOperator(dense)
        with pytest.raises(ValueError):
            op.matvec(np.ones(6))
        with pytest.raises(ValueError):
            op.rmatvec(np.ones(9))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            DenseOperator(np.ones(4))

    def test_product_counting(self, rng, dense):
        op = DenseOperator(dense)
        op.matvec(np.ones(5))
        op.matvec(np.ones(5))
        op.rmatvec(np.ones(8))
        assert (op.n_matvec, op.n_rmatvec) == (2, 1)
        op.reset_counts()
        assert (op.n_matvec, op.n_rmatvec) == (0, 0)


class TestCSROperator:
    def test_wraps_our_csr(self, rng, dense):
        op = CSROperator(CSRMatrix.from_dense(dense))
        assert np.allclose(op.to_dense(), dense)

    def test_wraps_scipy(self, dense):
        op = CSROperator(sp.csr_matrix(dense))
        assert np.allclose(op.to_dense(), dense)

    def test_rejects_dense(self, dense):
        with pytest.raises(TypeError):
            CSROperator(dense)


class TestTranspose:
    def test_transpose_products(self, rng, dense):
        op = DenseOperator(dense).T
        assert isinstance(op, TransposedOperator)
        assert op.shape == (5, 8)
        u = rng.standard_normal(8)
        v = rng.standard_normal(5)
        assert np.allclose(op.matvec(u), dense.T @ u)
        assert np.allclose(op.rmatvec(v), dense @ v)

    def test_double_transpose(self, dense):
        op = DenseOperator(dense).T.T
        assert np.allclose(op.to_dense(), dense)


class TestCenteringOperator:
    def test_equals_explicit_centering(self, dense):
        op = CenteringOperator(DenseOperator(dense))
        assert np.allclose(op.to_dense(), dense - dense.mean(axis=0))

    def test_rmatvec(self, rng, dense):
        op = CenteringOperator(DenseOperator(dense))
        u = rng.standard_normal(8)
        centered = dense - dense.mean(axis=0)
        assert np.allclose(op.rmatvec(u), centered.T @ u)

    def test_explicit_means(self, rng, dense):
        means = dense.mean(axis=0)
        op = CenteringOperator(DenseOperator(dense), column_means=means)
        v = rng.standard_normal(5)
        assert np.allclose(op.matvec(v), (dense - means) @ v)

    def test_wrong_means_length(self, dense):
        with pytest.raises(ValueError):
            CenteringOperator(DenseOperator(dense), column_means=np.ones(3))

    def test_sparse_base_never_densified(self, rng, dense):
        csr = CSRMatrix.from_dense(dense)
        op = CenteringOperator(CSROperator(csr))
        v = rng.standard_normal(5)
        expected = (dense - dense.mean(axis=0)) @ v
        assert np.allclose(op.matvec(v), expected)

    def test_centered_output_sums_to_zero(self, rng, dense):
        op = CenteringOperator(DenseOperator(dense))
        v = rng.standard_normal(5)
        assert abs(op.matvec(v).sum()) < 1e-10


class TestAppendOnes:
    def test_equals_explicit_augmentation(self, dense):
        op = AppendOnesOperator(DenseOperator(dense))
        expected = np.hstack([dense, np.ones((8, 1))])
        assert np.allclose(op.to_dense(), expected)

    def test_rmatvec_last_coordinate_is_sum(self, rng, dense):
        op = AppendOnesOperator(DenseOperator(dense))
        u = rng.standard_normal(8)
        out = op.rmatvec(u)
        assert out.shape == (6,)
        assert out[-1] == pytest.approx(u.sum())
        assert np.allclose(out[:-1], dense.T @ u)

    def test_shape(self, dense):
        assert AppendOnesOperator(DenseOperator(dense)).shape == (8, 6)


class TestComposites:
    def test_scaled(self, rng, dense):
        op = ScaledOperator(DenseOperator(dense), 2.5)
        v = rng.standard_normal(5)
        assert np.allclose(op.matvec(v), 2.5 * dense @ v)
        u = rng.standard_normal(8)
        assert np.allclose(op.rmatvec(u), 2.5 * dense.T @ u)

    def test_identity(self, rng):
        op = IdentityOperator(4, scale=3.0)
        v = rng.standard_normal(4)
        assert np.allclose(op.matvec(v), 3.0 * v)
        assert np.allclose(op.rmatvec(v), 3.0 * v)

    def test_stacked_is_damped_system(self, rng, dense):
        alpha = 0.3
        damped = StackedOperator(
            DenseOperator(dense), IdentityOperator(5, scale=np.sqrt(alpha))
        )
        expected = np.vstack([dense, np.sqrt(alpha) * np.eye(5)])
        assert np.allclose(damped.to_dense(), expected)
        u = rng.standard_normal(13)
        assert np.allclose(damped.rmatvec(u), expected.T @ u)

    def test_stacked_column_mismatch(self, dense):
        with pytest.raises(ValueError):
            StackedOperator(DenseOperator(dense), IdentityOperator(4))


class TestAsOperator:
    def test_dense_dispatch(self, dense):
        assert isinstance(as_operator(dense), DenseOperator)

    def test_csr_dispatch(self, dense):
        assert isinstance(as_operator(CSRMatrix.from_dense(dense)), CSROperator)

    def test_scipy_dispatch(self, dense):
        assert isinstance(as_operator(sp.csr_matrix(dense)), CSROperator)

    def test_operator_passthrough(self, dense):
        op = DenseOperator(dense)
        assert as_operator(op) is op
