"""Unit tests for dense helpers (symmetric eig, ridge oracle, gen-eig)."""

import numpy as np
import pytest

from repro.linalg.dense import (
    generalized_eigh,
    is_orthonormal,
    ridge_solution,
    solve_lstsq,
    symmetric_eigh,
)


class TestSymmetricEigh:
    def test_descending_order(self, rng):
        A = rng.standard_normal((8, 8))
        A = A + A.T
        eigvals, _ = symmetric_eigh(A)
        assert np.all(np.diff(eigvals) <= 1e-12)

    def test_eigen_equation(self, rng):
        A = rng.standard_normal((10, 10))
        A = A + A.T
        eigvals, eigvecs = symmetric_eigh(A)
        assert np.allclose(A @ eigvecs, eigvecs * eigvals, atol=1e-8)

    def test_symmetrizes_input(self, rng):
        A = rng.standard_normal((6, 6))
        sym = 0.5 * (A + A.T)
        vals_raw, _ = symmetric_eigh(A)
        vals_sym, _ = symmetric_eigh(sym)
        assert np.allclose(vals_raw, vals_sym)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            symmetric_eigh(np.ones((3, 4)))


class TestLeastSquares:
    def test_solve_lstsq(self, rng):
        A = rng.standard_normal((20, 6))
        b = rng.standard_normal(20)
        x = solve_lstsq(A, b)
        # optimality: residual orthogonal to the column space
        assert np.abs(A.T @ (A @ x - b)).max() < 1e-10

    def test_ridge_solution_limits(self, rng):
        A = rng.standard_normal((25, 8))
        b = rng.standard_normal(25)
        tiny = ridge_solution(A, b, 1e-12)
        assert np.allclose(tiny, solve_lstsq(A, b), atol=1e-6)
        huge = ridge_solution(A, b, 1e12)
        assert np.linalg.norm(huge) < 1e-9

    def test_ridge_shrinks_norm(self, rng):
        A = rng.standard_normal((25, 8))
        b = rng.standard_normal(25)
        norms = [
            np.linalg.norm(ridge_solution(A, b, alpha))
            for alpha in (0.01, 1.0, 100.0)
        ]
        assert norms[0] > norms[1] > norms[2]


class TestGeneralizedEigh:
    def test_reduces_to_standard_with_identity(self, rng):
        B = rng.standard_normal((7, 7))
        B = B + B.T
        vals_gen, vecs_gen = generalized_eigh(B, np.eye(7))
        vals_std, _ = symmetric_eigh(B)
        assert np.allclose(vals_gen, vals_std, atol=1e-9)
        assert np.allclose(B @ vecs_gen, vecs_gen * vals_gen, atol=1e-8)

    def test_generalized_equation(self, rng):
        B = rng.standard_normal((6, 6))
        B = B + B.T
        A = rng.standard_normal((6, 6))
        A = A @ A.T + 6.0 * np.eye(6)
        eigvals, eigvecs = generalized_eigh(B, A)
        assert np.allclose(B @ eigvecs, (A @ eigvecs) * eigvals, atol=1e-7)

    def test_regularization_allows_singular_a(self, rng):
        B = np.eye(5)
        A = np.zeros((5, 5))  # singular; needs the shift
        eigvals, _ = generalized_eigh(B, A, regularization=2.0)
        assert np.allclose(eigvals, 0.5)  # B v = λ (2 I) v → λ = 1/2


class TestIsOrthonormal:
    def test_accepts_identity_columns(self, rng):
        Q, _ = np.linalg.qr(rng.standard_normal((10, 4)))
        assert is_orthonormal(Q)

    def test_rejects_scaled(self, rng):
        Q, _ = np.linalg.qr(rng.standard_normal((10, 4)))
        assert not is_orthonormal(2.0 * Q)

    def test_empty_is_orthonormal(self):
        assert is_orthonormal(np.empty((5, 0)))


class TestRidgeCholeskyPath:
    """ridge_solution factors the shifted Gram matrix once with the
    repo's Cholesky and reuses the factor across right-hand sides."""

    def test_matches_direct_solve(self, rng):
        A = rng.standard_normal((30, 10))
        b = rng.standard_normal(30)
        alpha = 0.7
        expected = np.linalg.solve(
            A.T @ A + alpha * np.eye(10), A.T @ b
        )
        assert np.allclose(ridge_solution(A, b, alpha), expected, atol=1e-10)

    def test_matrix_rhs_matches_column_loop(self, rng):
        A = rng.standard_normal((30, 10))
        B = rng.standard_normal((30, 4))
        together = ridge_solution(A, B, 0.5)
        assert together.shape == (10, 4)
        for j in range(4):
            assert np.allclose(
                together[:, j], ridge_solution(A, B[:, j], 0.5), atol=1e-12
            )

    def test_singular_gram_falls_back_to_lstsq(self, rng):
        # rank-deficient A with alpha=0: the Gram matrix is singular,
        # Cholesky must fail, and the minimum-norm solution comes back
        A = rng.standard_normal((20, 6))
        A[:, 3] = A[:, 0] + A[:, 1]  # exact linear dependence
        b = rng.standard_normal(20)
        x = ridge_solution(A, b, 0.0)
        assert np.all(np.isfinite(x))
        # optimality of the least-squares fit
        assert np.abs(A.T @ (A @ x - b)).max() < 1e-8
