"""Unit tests for the cross-product SVD (§II-B trick)."""

import numpy as np
import pytest

from repro.linalg.svd import (
    cross_product_svd,
    low_rank_approximation,
    svd_rank,
)


class TestReconstruction:
    @pytest.mark.parametrize("shape", [(20, 7), (7, 20), (10, 10), (1, 5), (5, 1)])
    def test_reconstruction(self, rng, shape):
        X = rng.standard_normal(shape)
        U, s, V = cross_product_svd(X)
        assert np.allclose((U * s) @ V.T, X, atol=1e-8)

    @pytest.mark.parametrize("shape", [(20, 7), (7, 20)])
    def test_orthonormal_factors(self, rng, shape):
        X = rng.standard_normal(shape)
        U, s, V = cross_product_svd(X)
        r = s.shape[0]
        assert np.allclose(U.T @ U, np.eye(r), atol=1e-8)
        assert np.allclose(V.T @ V, np.eye(r), atol=1e-8)

    def test_singular_values_descending(self, rng):
        X = rng.standard_normal((15, 9))
        _, s, _ = cross_product_svd(X)
        assert np.all(np.diff(s) <= 1e-12)

    def test_matches_numpy_svd_values(self, rng):
        X = rng.standard_normal((12, 8))
        _, s, _ = cross_product_svd(X)
        s_np = np.linalg.svd(X, compute_uv=False)
        assert np.allclose(np.sort(s)[::-1], s_np[: len(s)], atol=1e-8)

    def test_empty_matrix(self):
        U, s, V = cross_product_svd(np.empty((0, 4)))
        assert U.shape == (0, 0) and s.shape == (0,) and V.shape == (4, 0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            cross_product_svd(np.ones(5))


class TestRank:
    def test_exact_low_rank(self, rng):
        X = rng.standard_normal((25, 6)) @ rng.standard_normal((6, 18))
        assert svd_rank(X) == 6

    def test_centered_matrix_loses_rank(self, rng):
        # centering a wide (m < n) full-rank matrix drops rank to m-1
        X = rng.standard_normal((7, 30))
        centered = X - X.mean(axis=0)
        assert svd_rank(centered) == 6

    def test_zero_matrix_rank_zero(self):
        assert svd_rank(np.zeros((4, 5))) == 0

    def test_rank_one(self, rng):
        u = rng.standard_normal(10)
        v = rng.standard_normal(6)
        assert svd_rank(np.outer(u, v)) == 1


class TestLowRankApproximation:
    def test_eckart_young_error(self, rng):
        X = rng.standard_normal((15, 10))
        s_np = np.linalg.svd(X, compute_uv=False)
        for k in (1, 3, 7):
            approx = low_rank_approximation(X, k)
            error = np.linalg.norm(X - approx, ord=2)
            assert error == pytest.approx(s_np[k], rel=1e-6)

    def test_full_rank_is_exact(self, rng):
        X = rng.standard_normal((8, 5))
        assert np.allclose(low_rank_approximation(X, 5), X, atol=1e-8)

    def test_rank_above_true_rank_is_exact(self, rng):
        X = rng.standard_normal((10, 3)) @ rng.standard_normal((3, 8))
        assert np.allclose(low_rank_approximation(X, 100), X, atol=1e-7)
