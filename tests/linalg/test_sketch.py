"""Unit tests for repro.linalg.sketch: operators, apply, preconditioner."""

import numpy as np
import pytest

from repro.analysis.contracts import verify_operator
from repro.linalg.block_lsqr import block_lsqr
from repro.linalg.lsqr import lsqr
from repro.linalg.operators import (
    AppendOnesOperator,
    CenteringOperator,
    DenseOperator,
    LinearOperator,
)
from repro.linalg.sketch import (
    SKETCH_KINDS,
    CountSketchOperator,
    PreconditionedOperator,
    SRHTOperator,
    SketchingError,
    SketchPreconditioner,
    SparseSignOperator,
    build_preconditioner,
    default_sketch_size,
    preconditioner_from_gram,
    sketch_apply,
    sketch_operator,
)
from repro.linalg.sparse import CSRMatrix


def dense_sketch(S):
    """Materialize a sketch operator as its dense (s, m) matrix."""
    return np.asarray(S.matmat(np.eye(S.shape[1])))


def ill_conditioned(rng, m=300, n=24, cond=1e3):
    """Dense (m, n) matrix with geometrically decaying column scales."""
    scales = np.logspace(0, np.log10(cond), n)
    return rng.standard_normal((m, n)) / scales


class TestSketchOperators:
    @pytest.mark.parametrize("kind", SKETCH_KINDS)
    def test_contract(self, kind):
        S = sketch_operator(kind, m=37, sketch_size=16, seed=3)
        assert verify_operator(S, rng=0).ok

    @pytest.mark.parametrize("kind", SKETCH_KINDS)
    def test_products_match_dense_matrix(self, rng, kind):
        S = sketch_operator(kind, m=29, sketch_size=12, seed=1)
        dense = dense_sketch(S)
        v = rng.standard_normal(29)
        u = rng.standard_normal(12)
        B = rng.standard_normal((29, 4))
        U = rng.standard_normal((12, 3))
        np.testing.assert_allclose(S.matvec(v), dense @ v, atol=1e-12)
        np.testing.assert_allclose(S.rmatvec(u), dense.T @ u, atol=1e-12)
        np.testing.assert_allclose(S.matmat(B), dense @ B, atol=1e-12)
        np.testing.assert_allclose(S.rmatmat(U), dense.T @ U, atol=1e-12)

    @pytest.mark.parametrize("kind", SKETCH_KINDS)
    def test_seed_determinism(self, rng, kind):
        v = rng.standard_normal(41)
        a = sketch_operator(kind, m=41, sketch_size=16, seed=7).matvec(v)
        b = sketch_operator(kind, m=41, sketch_size=16, seed=7).matvec(v)
        c = sketch_operator(kind, m=41, sketch_size=16, seed=8).matvec(v)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    @pytest.mark.parametrize("kind", SKETCH_KINDS)
    def test_mean_isometry_in_expectation(self, kind):
        # E[SᵀS] = I for every family: averaging ‖S x‖² over many seeds
        # should recover ‖x‖² within a few percent.
        x = np.sin(np.arange(64)) / np.linalg.norm(np.sin(np.arange(64)))
        norms = [
            float(
                np.linalg.norm(
                    sketch_operator(kind, 64, 48, seed=s).matvec(x)
                )
                ** 2
            )
            for s in range(200)
        ]
        assert abs(np.mean(norms) - 1.0) < 0.1

    def test_countsketch_one_nonzero_per_column(self):
        S = CountSketchOperator(m=23, sketch_size=9, seed=0)
        dense = dense_sketch(S)
        assert ((dense != 0).sum(axis=0) == 1).all()
        assert set(np.abs(dense[dense != 0])) == {1.0}

    def test_sparse_sign_scales_by_sqrt_k(self):
        S = SparseSignOperator(m=23, sketch_size=16, k_nonzeros=4, seed=0)
        dense = dense_sketch(S)
        nonzero = np.abs(dense[dense != 0])
        # Replicas may collide within a coordinate, so magnitudes are
        # multiples of 1/sqrt(k) = 0.5 (up to k of them stacked).
        assert np.allclose(np.remainder(nonzero, 0.5), 0.0)
        assert nonzero.min() >= 0.5 and nonzero.max() <= 2.0

    def test_srht_rows_are_sampled_hadamard(self):
        S = SRHTOperator(m=16, sketch_size=8, seed=0)
        dense = dense_sketch(S)
        # Every entry of P·H·D/√s has magnitude 1/√s.
        assert np.allclose(np.abs(dense), 1.0 / np.sqrt(8))

    def test_srht_pads_to_power_of_two(self):
        assert SRHTOperator(m=17, sketch_size=8, seed=0).padded == 32
        assert SRHTOperator(m=16, sketch_size=8, seed=0).padded == 16

    def test_float32_dtype_preserved(self, rng):
        for kind in SKETCH_KINDS:
            S = sketch_operator(kind, 20, 8, seed=0, dtype=np.float32)
            out = S.matvec(rng.standard_normal(20).astype(np.float32))
            assert out.dtype == np.float32

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SketchingError, match="unknown sketch kind"):
            sketch_operator("gaussian", 10, 4)
        with pytest.raises(SketchingError, match="m must be"):
            CountSketchOperator(m=0, sketch_size=4)
        with pytest.raises(SketchingError, match="sketch_size"):
            CountSketchOperator(m=10, sketch_size=0)
        with pytest.raises(SketchingError, match="dtype"):
            CountSketchOperator(m=10, sketch_size=4, dtype=np.int64)
        with pytest.raises(SketchingError, match="k_nonzeros"):
            SparseSignOperator(m=10, sketch_size=4, k_nonzeros=0)
        with pytest.raises(SketchingError, match="exceeds the padded"):
            SRHTOperator(m=10, sketch_size=32)


class TestSketchApply:
    def test_csr_fast_path_matches_dense(self, rng):
        dense = rng.standard_normal((40, 9))
        dense[rng.random((40, 9)) > 0.3] = 0.0
        matrix = CSRMatrix.from_dense(dense)
        for kind in ("countsketch", "sparse_sign"):
            S = sketch_operator(kind, 40, 16, seed=2)
            np.testing.assert_allclose(
                sketch_apply(S, matrix), dense_sketch(S) @ dense, atol=1e-12
            )

    def test_csr_fallback_when_accumulator_too_large(self, rng, monkeypatch):
        import repro.linalg.sketch as sketch_mod

        dense = rng.standard_normal((30, 7))
        matrix = CSRMatrix.from_dense(dense)
        S = CountSketchOperator(30, 12, seed=0)
        expected = sketch_apply(S, matrix)
        monkeypatch.setattr(sketch_mod, "_DENSE_ACCUMULATOR_LIMIT", 1)
        assert S.sketch_csr(matrix) is None
        np.testing.assert_allclose(
            sketch_apply(S, matrix), expected, atol=1e-12
        )

    def test_append_ones_peel(self, rng):
        dense = rng.standard_normal((25, 6))
        S = CountSketchOperator(25, 10, seed=1)
        got = sketch_apply(S, AppendOnesOperator(DenseOperator(dense)))
        expected = dense_sketch(S) @ np.hstack([dense, np.ones((25, 1))])
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_centering_peel(self, rng):
        dense = rng.standard_normal((25, 6)) + 3.0
        S = CountSketchOperator(25, 10, seed=1)
        got = sketch_apply(S, CenteringOperator(DenseOperator(dense)))
        centered = dense - dense.mean(axis=0)
        np.testing.assert_allclose(
            got, dense_sketch(S) @ centered, atol=1e-12
        )

    def test_generic_operator_fallback(self, rng):
        # An operator exposing neither .matrix nor .array exercises the
        # chunked rmatmat path.
        dense = rng.standard_normal((31, 5))

        class Opaque(LinearOperator):
            def __init__(self):
                super().__init__()
                self.shape = dense.shape

            def _matvec(self, v):
                return dense @ v

            def _rmatvec(self, u):
                return dense.T @ u

        S = CountSketchOperator(31, 11, seed=4)
        np.testing.assert_allclose(
            sketch_apply(S, Opaque(), chunk=3),
            dense_sketch(S) @ dense,
            atol=1e-12,
        )

    def test_shape_mismatch_rejected(self, rng):
        S = CountSketchOperator(10, 4, seed=0)
        with pytest.raises(SketchingError, match="rows"):
            sketch_apply(S, rng.standard_normal((11, 3)))

    def test_default_sketch_size(self):
        assert default_sketch_size(10_000, 100) == 400
        assert default_sketch_size(10_000, 10) == 74
        assert default_sketch_size(50, 100) == 50
        assert default_sketch_size(1, 1) == 1


class TestSketchPreconditioner:
    def test_apply_inverts_the_factor(self, rng):
        A = ill_conditioned(rng)
        pre = build_preconditioner(A, alpha=0.1, seed=0)
        R = pre.factor_lower.T
        W = rng.standard_normal((pre.n, 3))
        np.testing.assert_allclose(R @ pre.apply(W), W, atol=1e-8)
        np.testing.assert_allclose(
            R.T @ pre.apply_adjoint(W), W, atol=1e-8
        )
        assert pre.n_applies == 2

    def test_preconditioned_system_is_well_conditioned(self, rng):
        A = ill_conditioned(rng, cond=1e4)
        alpha = 1e-6 * np.linalg.norm(A) ** 2 / A.shape[1]
        pre = build_preconditioner(A, alpha=alpha, seed=0)
        stacked = np.vstack([A, np.sqrt(alpha) * np.eye(A.shape[1])])
        inv_r = np.linalg.inv(pre.factor_lower.T)
        plain = np.linalg.cond(stacked)
        preconditioned = np.linalg.cond(stacked @ inv_r)
        assert preconditioned < 10
        assert preconditioned < plain / 10

    def test_gram_route_matches_operator_route(self, rng):
        A = ill_conditioned(rng)
        S = CountSketchOperator(A.shape[0], 96, seed=5)
        direct = build_preconditioner(A, alpha=0.5, sketch=S)
        sketched = sketch_apply(S, A)
        from_gram = preconditioner_from_gram(
            sketched.T @ sketched, alpha=0.5
        )
        np.testing.assert_allclose(
            direct.factor_lower, from_gram.factor_lower, atol=1e-10
        )

    def test_wrapped_operator_contract(self, rng):
        A = ill_conditioned(rng, m=60, n=8)
        pre = build_preconditioner(A, alpha=0.3, seed=0)
        assert verify_operator(pre.wrap(DenseOperator(A)), rng=0).ok

    def test_jitter_rescues_rank_deficient_gram(self):
        # A singular Gram at alpha=0 (duplicate columns) still factors.
        gram = np.ones((4, 4))
        pre = preconditioner_from_gram(gram, alpha=0.0)
        assert pre.jitter > 0

    def test_unfixable_gram_raises(self):
        with pytest.raises(SketchingError, match="positive definite"):
            preconditioner_from_gram(-np.eye(3), alpha=0.0)

    def test_invalid_inputs_rejected(self, rng):
        with pytest.raises(SketchingError, match="square"):
            preconditioner_from_gram(np.ones((2, 3)))
        with pytest.raises(SketchingError, match="alpha"):
            preconditioner_from_gram(np.eye(2), alpha=-1.0)
        with pytest.raises(SketchingError, match="square lower-triangular"):
            SketchPreconditioner(np.ones((2, 3)))
        with pytest.raises(SketchingError, match="alpha"):
            build_preconditioner(rng.standard_normal((5, 2)), alpha=-1.0)
        with pytest.raises(SketchingError, match="sketch_size"):
            build_preconditioner(
                rng.standard_normal((5, 2)), sketch_size=0
            )
        S = CountSketchOperator(10, 4, seed=0)
        with pytest.raises(SketchingError, match="rows"):
            build_preconditioner(rng.standard_normal((11, 3)), sketch=S)

    def test_dimension_mismatch_with_operator(self, rng):
        A = rng.standard_normal((20, 5))
        pre = build_preconditioner(A, alpha=0.1)
        with pytest.raises(SketchingError, match="does not match"):
            PreconditionedOperator(
                DenseOperator(rng.standard_normal((20, 6))), pre
            )

    def test_build_emits_span_and_applies_bump_counter(self, rng):
        from repro.observability import InMemorySink, configure, get_tracer

        sink = InMemorySink()
        configure(sink=sink)
        try:
            A = ill_conditioned(rng, m=80, n=10)
            pre = build_preconditioner(A, alpha=0.2, seed=0)
            pre.apply(np.zeros(pre.n))
            record = sink.find("sketch.build")[0]
            assert record["attributes"]["kind"] == "countsketch"
            assert record["attributes"]["rows"] == 80
            assert record["attributes"]["jitter"] == 0.0
            counters = get_tracer().metrics.snapshot()["counters"]
            assert counters["precond.apply"] == 1.0
        finally:
            configure(enabled=False)


class TestPreconditionedSolvers:
    def test_lsqr_parity_and_iteration_cut(self, rng):
        A = ill_conditioned(rng, cond=1e3)
        x_true = rng.standard_normal(A.shape[1])
        b = A @ x_true
        alpha = 1e-8 * np.linalg.norm(A) ** 2 / A.shape[1]
        damp = float(np.sqrt(alpha))
        plain = lsqr(A, b, damp=damp, atol=1e-10, btol=1e-10, iter_lim=2000)
        pre = build_preconditioner(A, alpha=alpha, seed=0)
        fast = lsqr(
            A, b, damp=damp, atol=1e-10, btol=1e-10, iter_lim=2000,
            precondition=pre,
        )
        np.testing.assert_allclose(fast.x, plain.x, atol=1e-6)
        assert fast.itn < plain.itn / 2

    def test_lsqr_preconditioned_warm_start(self, rng):
        A = ill_conditioned(rng, m=120, n=10)
        b = rng.standard_normal(120)
        pre = build_preconditioner(A, alpha=0.01, seed=0)
        damp = 0.1
        cold = lsqr(A, b, damp=damp, precondition=pre, atol=1e-12, btol=1e-12)
        warm = lsqr(
            A, b, damp=damp, precondition=pre, x0=cold.x,
            atol=1e-12, btol=1e-12,
        )
        np.testing.assert_allclose(warm.x, cold.x, atol=1e-8)
        assert warm.itn <= cold.itn

    def test_block_lsqr_parity(self, rng):
        # cond 1e2: the unpreconditioned baseline itself only reaches
        # ~1e-6 accuracy beyond that, which would dominate the parity.
        A = ill_conditioned(rng, cond=1e2)
        B = rng.standard_normal((A.shape[0], 3))
        alpha = 1e-6 * np.linalg.norm(A) ** 2 / A.shape[1]
        damp = float(np.sqrt(alpha))
        plain = block_lsqr(A, B, damp=damp, atol=1e-10, btol=1e-10,
                           iter_lim=2000)
        pre = build_preconditioner(A, alpha=alpha, seed=0)
        fast = block_lsqr(
            A, B, damp=damp, atol=1e-10, btol=1e-10, iter_lim=2000,
            precondition=pre,
        )
        np.testing.assert_allclose(fast.X, plain.X, atol=1e-6)
        assert int(np.max(fast.itn)) < int(np.max(plain.itn))

    def test_lsqr_dimension_mismatch(self, rng):
        A = rng.standard_normal((20, 5))
        pre = build_preconditioner(rng.standard_normal((20, 6)), alpha=0.1)
        with pytest.raises(ValueError, match="preconditioner dimension"):
            lsqr(A, np.zeros(20), precondition=pre)
