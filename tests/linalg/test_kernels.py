"""Parity and dispatch tests for the CSR kernel backends.

The compiled backend's whole contract is *bitwise* equality with the
pure-numpy reference — interchangeable results, different speed.  Every
parity assertion here is therefore ``array_equal`` on the raw values
(and dtype checks), never ``allclose``.
"""

import warnings

import numpy as np
import pytest

from repro.linalg import kernels
from repro.linalg.kernels import (
    KERNEL_BACKEND_ENV,
    KERNEL_BACKENDS,
    active_backend,
    compiled_available,
    csr_adjoint_products,
    csr_matmat,
    csr_matvec,
    csr_reduce_adjoint,
    csr_rmatmat,
    csr_rmatvec,
    requested_backend,
    use_backend,
)
from repro.linalg.sparse import CSRMatrix
from repro.robustness.report import RobustnessWarning

needs_compiled = pytest.mark.skipif(
    not compiled_available(),
    reason="compiled kernel extension not built",
)


@pytest.fixture(
    params=[
        "reference",
        pytest.param("compiled", marks=needs_compiled),
    ]
)
def backend(request):
    """Run the test under each concrete backend selection."""
    with use_backend(request.param):
        yield request.param


def corner_matrices(dtype):
    """CSR corner cases the kernels must agree on, as (label, matrix).

    Covers: no stored entries, empty rows interleaved with full ones, a
    single row/column, duplicate column indices within one row (CSR
    permits them; products must accumulate both), and a row longer than
    128 entries (numpy's pairwise summation switches to its recursive
    split there — the compiled port must follow it exactly).
    """
    rng = np.random.default_rng(987)

    def from_dense(dense):
        return CSRMatrix.from_dense(np.asarray(dense, dtype=dtype))

    dense = rng.standard_normal((13, 9))
    dense[rng.random((13, 9)) > 0.4] = 0.0
    dense[3] = 0.0
    dense[7] = 0.0
    yield "mixed", from_dense(dense)
    yield "all_zero", from_dense(np.zeros((4, 5)))
    yield "single_row", from_dense(rng.standard_normal((1, 6)))
    yield "single_col", from_dense(rng.standard_normal((6, 1)))
    yield "dense_block", from_dense(rng.standard_normal((8, 7)))

    # duplicate column indices inside one row
    data = np.asarray([1.5, -2.25, 0.75, 3.0], dtype=dtype)
    indices = np.array([2, 2, 0, 2], dtype=np.int64)
    indptr = np.array([0, 3, 4], dtype=np.int64)
    yield "duplicate_cols", CSRMatrix(data, indices, indptr, (2, 4))

    # one long row (> 128 nnz) hits the recursive pairwise split; one
    # mid row (8 < nnz <= 128) hits the unrolled 8-accumulator loop
    long_row = rng.standard_normal((1, 300))
    long_row[0, rng.random(300) > 0.9] = 0.0  # keep most entries
    tall = np.vstack([long_row, np.zeros((1, 300)),
                      rng.standard_normal((2, 300))])
    yield "long_rows", from_dense(tall)


def operands(matrix, seed=0):
    rng = np.random.default_rng(seed)
    dtype = matrix.dtype
    m, n = matrix.shape
    return {
        "v": rng.standard_normal(n).astype(dtype),
        "u": rng.standard_normal(m).astype(dtype),
        "B": rng.standard_normal((n, 3)).astype(dtype),
        "U": rng.standard_normal((m, 3)).astype(dtype),
    }


class TestBitwiseParity:
    """Dispatch output must equal the reference kernels bit for bit."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_all_kernels_all_corners(self, backend, dtype):
        for label, matrix in corner_matrices(dtype):
            ops = operands(matrix)
            cases = [
                ("matvec", csr_matvec(matrix, ops["v"]),
                 matrix.matvec(ops["v"])),
                ("rmatvec", csr_rmatvec(matrix, ops["u"]),
                 matrix.rmatvec(ops["u"])),
                ("matmat", csr_matmat(matrix, ops["B"]),
                 matrix.matmat(ops["B"])),
                ("rmatmat", csr_rmatmat(matrix, ops["U"]),
                 matrix.rmatmat(ops["U"])),
            ]
            for kernel, got, want in cases:
                assert got.dtype == want.dtype, (backend, label, kernel)
                assert got.tobytes() == want.tobytes(), (
                    backend, label, kernel,
                )

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_adjoint_split_recombines_bitwise(self, backend, dtype):
        """products + reduce == the one-shot rmatvec, bit for bit."""
        for label, matrix in corner_matrices(dtype):
            u = operands(matrix)["u"]
            products = csr_adjoint_products(matrix, u)
            reference = matrix.data * u[matrix._row_ids]
            assert products.tobytes() == reference.tobytes(), (
                backend, label,
            )
            reduced = csr_reduce_adjoint(matrix, products)
            assert reduced.tobytes() == matrix.rmatvec(u).tobytes(), (
                backend, label,
            )

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_reduce_adjoint_out_form(self, backend, dtype):
        for _, matrix in corner_matrices(dtype):
            u = operands(matrix)["u"]
            products = csr_adjoint_products(matrix, u)
            out = np.full(matrix.shape[1], np.nan, dtype=products.dtype)
            result = csr_reduce_adjoint(matrix, products, out=out)
            assert result is out
            assert out.tobytes() == matrix.rmatvec(u).tobytes()

    def test_matvec_negative_zero_semantics(self, backend):
        """An all-zero row yields +0.0 on both backends (scatter seeds
        from 0.0, so the sign of zero is the seed's, not the data's)."""
        matrix = CSRMatrix.from_dense(
            np.array([[0.0, 0.0], [1.0, -1.0]])
        )
        v = np.array([1.0, 1.0])
        got = csr_matvec(matrix, v)
        want = matrix.matvec(v)
        assert got.tobytes() == want.tobytes()


class TestMixedDtypeRouting:
    """Ineligible calls fall back to the reference — never new numerics."""

    def test_f32_operand_on_f64_matrix(self, backend, rng):
        dense = rng.standard_normal((10, 6))
        matrix = CSRMatrix.from_dense(dense)
        v32 = rng.standard_normal(6).astype(np.float32)
        got = csr_matvec(matrix, v32)
        want = matrix.matvec(v32)
        assert got.dtype == np.float64
        assert got.tobytes() == want.tobytes()

    def test_f64_operand_on_f32_matrix_falls_back(self, backend, rng):
        dense = rng.standard_normal((10, 6)).astype(np.float32)
        matrix = CSRMatrix.from_dense(dense)
        v64 = rng.standard_normal(6)
        got = csr_matvec(matrix, v64)
        want = matrix.matvec(v64)
        assert got.dtype == want.dtype
        assert got.tobytes() == want.tobytes()

    def test_mixed_dtype_matmat(self, backend, rng):
        dense = rng.standard_normal((10, 6)).astype(np.float32)
        matrix = CSRMatrix.from_dense(dense)
        B64 = rng.standard_normal((6, 3))
        got = csr_matmat(matrix, B64)
        want = matrix.matmat(B64)
        assert got.dtype == want.dtype
        assert got.tobytes() == want.tobytes()

    def test_noncontiguous_storage_falls_back(self, backend, rng):
        base = CSRMatrix.from_dense(rng.standard_normal((8, 5)))
        # a strided view of a larger buffer is still a valid CSRMatrix,
        # but the C kernels require native layout
        padded = np.zeros(2 * base.nnz)
        padded[::2] = base.data
        strided = CSRMatrix(
            padded[::2], base.indices, base.indptr, base.shape
        )
        v = rng.standard_normal(5)
        assert csr_matvec(strided, v).tobytes() == (
            base.matvec(v).tobytes()
        )

    def test_shape_errors_match_reference(self, backend, rng):
        matrix = CSRMatrix.from_dense(rng.standard_normal((6, 4)))
        with pytest.raises(ValueError, match="matvec"):
            csr_matvec(matrix, np.ones(5))
        with pytest.raises(ValueError, match="rmatvec"):
            csr_rmatvec(matrix, np.ones(7))
        with pytest.raises(ValueError, match="dimension"):
            csr_matmat(matrix, np.ones((5, 2)))
        with pytest.raises(ValueError, match="dimension"):
            csr_rmatmat(matrix, np.ones((7, 2)))

    def test_vector_block_routing(self, backend, rng):
        """1-D and single-column blocks route through the matvec pair
        exactly as the reference does."""
        matrix = CSRMatrix.from_dense(rng.standard_normal((6, 4)))
        v = rng.standard_normal(4)
        u = rng.standard_normal(6)
        assert csr_matmat(matrix, v).ndim == 1
        assert csr_matmat(matrix, v[:, None]).shape == (6, 1)
        assert csr_rmatmat(matrix, u).ndim == 1
        assert csr_rmatmat(matrix, u[:, None]).shape == (4, 1)
        assert csr_matmat(matrix, v[:, None]).tobytes() == (
            matrix.matmat(v[:, None]).tobytes()
        )
        assert csr_rmatmat(matrix, u[:, None]).tobytes() == (
            matrix.rmatmat(u[:, None]).tobytes()
        )


class TestSelection:
    """Backend resolution: context override > env var > auto."""

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert requested_backend() == "auto"
        assert active_backend() in ("reference", "compiled")

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "reference")
        assert requested_backend() == "reference"
        assert active_backend() == "reference"

    def test_env_var_invalid_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "fortran")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            requested_backend()

    def test_context_overrides_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "auto")
        with use_backend("reference"):
            assert requested_backend() == "reference"
        assert requested_backend() == "auto"

    def test_use_backend_nests_and_restores(self):
        before = requested_backend()
        with use_backend("reference"):
            with use_backend("auto"):
                assert requested_backend() == "auto"
            assert requested_backend() == "reference"
        assert requested_backend() == before

    def test_use_backend_none_is_noop(self):
        before = requested_backend()
        with use_backend(None):
            assert requested_backend() == before

    def test_use_backend_invalid_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            with use_backend("simd"):
                pass  # pragma: no cover

    def test_backend_names_frozen(self):
        assert KERNEL_BACKENDS == ("auto", "reference", "compiled")

    @needs_compiled
    def test_auto_prefers_compiled(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        with use_backend("auto"):
            assert active_backend() == "compiled"


class TestMissingExtensionFallback:
    """Explicit 'compiled' without the extension warns once, then runs
    the reference; 'auto' stays silent."""

    @pytest.fixture
    def no_extension(self, monkeypatch):
        monkeypatch.setattr(kernels, "_compiled", None)
        kernels._reset_missing_warning()
        yield
        kernels._reset_missing_warning()

    def test_explicit_compiled_warns_once(self, no_extension, rng):
        matrix = CSRMatrix.from_dense(rng.standard_normal((5, 4)))
        v = rng.standard_normal(4)
        with use_backend("compiled"):
            with pytest.warns(RobustnessWarning, match="not built"):
                first = csr_matvec(matrix, v)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                second = csr_matvec(matrix, v)
        assert first.tobytes() == matrix.matvec(v).tobytes()
        assert second.tobytes() == first.tobytes()

    def test_auto_falls_back_silently(self, no_extension, rng):
        matrix = CSRMatrix.from_dense(rng.standard_normal((5, 4)))
        v = rng.standard_normal(4)
        with use_backend("auto"):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert active_backend() == "reference"
                result = csr_matvec(matrix, v)
        assert result.tobytes() == matrix.matvec(v).tobytes()

    def test_compiled_available_reports_false(self, no_extension):
        assert not compiled_available()


class TestConfigIntegration:
    """SolverConfig carries the knob; SRDA scopes it around fits."""

    def test_config_validates_backend_name(self):
        from repro.core.solver_config import SolverConfig

        for name in (None,) + KERNEL_BACKENDS:
            assert SolverConfig(kernel_backend=name).kernel_backend == name
        with pytest.raises(ValueError, match="kernel_backend"):
            SolverConfig(kernel_backend="gpu")

    def test_config_param_dict_round_trip(self):
        from repro.core.solver_config import SolverConfig

        config = SolverConfig(kernel_backend="reference")
        params = config.to_param_dict()
        assert params["kernel_backend"] == "reference"
        assert SolverConfig(**params) == config

    @needs_compiled
    def test_srda_fit_bitwise_across_backends(self, sparse_classification):
        from repro.core.solver_config import SolverConfig
        from repro.core.srda import SRDA

        matrix, _, y = sparse_classification
        fits = {}
        for name in ("reference", "compiled"):
            model = SRDA(
                alpha=0.1,
                config=SolverConfig(solver="lsqr", kernel_backend=name),
            ).fit(matrix, y)
            fits[name] = model.components_
        assert fits["reference"].tobytes() == fits["compiled"].tobytes()

    def test_model_io_round_trips_backend(self, tmp_path,
                                          sparse_classification):
        from repro.core.solver_config import SolverConfig
        from repro.core.srda import SRDA
        from repro.io import load_model, save_model

        matrix, _, y = sparse_classification
        model = SRDA(
            alpha=0.1,
            config=SolverConfig(kernel_backend="reference"),
        ).fit(matrix, y)
        path = save_model(model, tmp_path / "model")
        loaded = load_model(path)
        assert loaded.config.kernel_backend == "reference"
