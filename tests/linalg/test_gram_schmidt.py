"""Unit tests for modified Gram–Schmidt and the thin QR."""

import numpy as np
import pytest

from repro.linalg.gram_schmidt import (
    gram_schmidt_qr,
    orthogonalize_against,
    orthonormality_error,
    orthonormalize,
    project_onto_span,
)


class TestOrthonormalize:
    def test_full_rank_input(self, rng):
        V = rng.standard_normal((15, 6))
        Q, kept = orthonormalize(V)
        assert Q.shape == (15, 6)
        assert np.array_equal(kept, np.arange(6))
        assert orthonormality_error(Q) < 1e-12

    def test_span_is_preserved(self, rng):
        V = rng.standard_normal((10, 4))
        Q, _ = orthonormalize(V)
        # every input column is reproduced by its projection onto Q
        for j in range(4):
            projected = project_onto_span(V[:, j], Q)
            assert np.allclose(projected, V[:, j], atol=1e-10)

    def test_dependent_column_dropped(self, rng):
        V = rng.standard_normal((12, 5))
        V[:, 2] = 3.0 * V[:, 0] - V[:, 1]
        Q, kept = orthonormalize(V)
        assert Q.shape[1] == 4
        assert 2 not in kept

    def test_zero_column_dropped(self, rng):
        V = rng.standard_normal((8, 3))
        V[:, 1] = 0.0
        Q, kept = orthonormalize(V)
        assert Q.shape[1] == 2
        assert list(kept) == [0, 2]

    def test_all_zero_input(self):
        Q, kept = orthonormalize(np.zeros((5, 3)))
        assert Q.shape == (5, 0)
        assert kept.size == 0

    def test_nearly_dependent_stays_orthonormal(self, rng):
        # classical GS fails here; modified GS + reorthogonalization holds
        base = rng.standard_normal(50)
        V = np.column_stack(
            [base + 1e-9 * rng.standard_normal(50) for _ in range(4)]
            + [rng.standard_normal(50)]
        )
        Q, _ = orthonormalize(V)
        assert orthonormality_error(Q) < 1e-10

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            orthonormalize(np.ones(4))


class TestOrthogonalizeAgainst:
    def test_result_is_orthogonal(self, rng):
        basis, _ = orthonormalize(rng.standard_normal((20, 5)))
        v = rng.standard_normal(20)
        out = orthogonalize_against(v, basis)
        assert np.abs(basis.T @ out).max() < 1e-12

    def test_input_unchanged(self, rng):
        basis, _ = orthonormalize(rng.standard_normal((10, 2)))
        v = rng.standard_normal(10)
        v_copy = v.copy()
        orthogonalize_against(v, basis)
        assert np.array_equal(v, v_copy)

    def test_dimension_mismatch(self, rng):
        basis, _ = orthonormalize(rng.standard_normal((10, 2)))
        with pytest.raises(ValueError):
            orthogonalize_against(np.ones(9), basis)


class TestGramSchmidtQR:
    def test_factorization(self, rng):
        A = rng.standard_normal((12, 5))
        Q, R, kept = gram_schmidt_qr(A)
        assert np.allclose(Q @ R, A, atol=1e-10)
        assert orthonormality_error(Q) < 1e-12
        assert np.array_equal(kept, np.arange(5))

    def test_r_is_upper_triangular(self, rng):
        A = rng.standard_normal((9, 4))
        _, R, _ = gram_schmidt_qr(A)
        assert np.allclose(R, np.triu(R))

    def test_rank_deficient(self, rng):
        A = rng.standard_normal((10, 4))
        A[:, 3] = A[:, 0] + A[:, 1]
        Q, R, kept = gram_schmidt_qr(A)
        assert Q.shape[1] == 3
        assert 3 not in kept
        assert np.allclose(Q @ R, A, atol=1e-8)

    def test_zero_matrix(self):
        Q, R, kept = gram_schmidt_qr(np.zeros((6, 2)))
        assert Q.shape == (6, 0)
        assert kept.size == 0

    def test_matches_numpy_qr_span(self, rng):
        A = rng.standard_normal((8, 3))
        Q, _, _ = gram_schmidt_qr(A)
        Q_np, _ = np.linalg.qr(A)
        # same subspace: projection operators agree
        assert np.allclose(Q @ Q.T, Q_np @ Q_np.T, atol=1e-10)
