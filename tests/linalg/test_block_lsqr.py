"""Block LSQR — equivalence with the sequential solver, column isolation,
and the bidiagonalize-once alpha-sweep engine.

The contract under test: running all right-hand sides through one
blocked Golub–Kahan iteration must be *semantically indistinguishable*
from looping :func:`repro.linalg.lsqr.lsqr` per column.  With a fixed
iteration count (``tol=0``, the paper's protocol) the two paths agree to
machine precision, including per-column ``istop``/``itn``.  With
tolerance-based stopping both paths converge to the same solution, but
at the convergence plateau the diagnostics live in a cancellation-noise
regime, so those cases assert looser bounds on ``x`` only.
"""

import numpy as np
import pytest

from repro.linalg.block_lsqr import (
    BlockLSQRResult,
    SharedBidiagonalization,
    block_lsqr,
)
from repro.linalg.lsqr import lsqr
from repro.linalg.operators import (
    AppendOnesOperator,
    CenteringOperator,
    FaultyOperator,
    as_operator,
)
from repro.linalg.sparse import CSRMatrix


def sequential_reference(op, B, **kwargs):
    """Per-column lsqr runs over the same systems."""
    x0 = kwargs.pop("X0", None)
    return [
        lsqr(
            op,
            B[:, j],
            x0=None if x0 is None else x0[:, j],
            **kwargs,
        )
        for j in range(B.shape[1])
    ]


def assert_strict_parity(blocked, columns, xtol=1e-10):
    """Fixed-iteration runs: exact istop/itn, x to near machine precision."""
    for j, ref in enumerate(columns):
        assert int(blocked.istop[j]) == ref.istop, (j, blocked.istop[j])
        assert int(blocked.itn[j]) == ref.itn, (j, blocked.itn[j])
        scale = max(1.0, float(np.max(np.abs(ref.x))))
        assert np.max(np.abs(blocked.X[:, j] - ref.x)) / scale < xtol, j
        assert blocked.r1norm[j] == pytest.approx(ref.r1norm, rel=1e-6, abs=1e-9)
        assert blocked.r2norm[j] == pytest.approx(ref.r2norm, rel=1e-6, abs=1e-9)


def sparse_problem(rng, m=60, n=45, density=0.25):
    dense = rng.standard_normal((m, n))
    dense[rng.random((m, n)) > density] = 0.0
    return CSRMatrix.from_dense(dense), dense


class TestBlockedVsSequential:
    def test_dense_fixed_iterations(self, rng):
        A = rng.standard_normal((40, 25))
        B = rng.standard_normal((40, 4))
        blocked = block_lsqr(A, B, damp=0.3, atol=0.0, btol=0.0, iter_lim=12)
        columns = sequential_reference(
            A, B, damp=0.3, atol=0.0, btol=0.0, iter_lim=12
        )
        assert_strict_parity(blocked, columns)

    def test_dense_tolerance_stopping(self, rng):
        A = rng.standard_normal((50, 20))
        B = rng.standard_normal((50, 5))
        blocked = block_lsqr(A, B, atol=1e-8, btol=1e-8, iter_lim=200)
        columns = sequential_reference(
            A, B, atol=1e-8, btol=1e-8, iter_lim=200
        )
        # Both paths are within 1e-8 of the true solution; their mutual
        # difference can be ~2e-8 and stopping tests may fire an
        # iteration apart at the plateau.
        for j, ref in enumerate(columns):
            scale = max(1.0, float(np.max(np.abs(ref.x))))
            assert np.max(np.abs(blocked.X[:, j] - ref.x)) / scale < 5e-8
            assert int(blocked.istop[j]) in (1, 2, ref.istop)

    def test_sparse_fixed_iterations(self, rng):
        matrix, _ = sparse_problem(rng)
        B = rng.standard_normal((matrix.shape[0], 4))
        blocked = block_lsqr(
            matrix, B, damp=1.0, atol=0.0, btol=0.0, iter_lim=15
        )
        columns = sequential_reference(
            matrix, B, damp=1.0, atol=0.0, btol=0.0, iter_lim=15
        )
        assert_strict_parity(blocked, columns)

    def test_centering_operator(self, rng):
        matrix, _ = sparse_problem(rng)
        op = CenteringOperator(as_operator(matrix))
        B = rng.standard_normal((matrix.shape[0], 3))
        blocked = block_lsqr(op, B, damp=0.5, atol=0.0, btol=0.0, iter_lim=15)
        columns = sequential_reference(
            op, B, damp=0.5, atol=0.0, btol=0.0, iter_lim=15
        )
        assert_strict_parity(blocked, columns)

    def test_append_ones_operator(self, rng):
        matrix, _ = sparse_problem(rng)
        op = AppendOnesOperator(as_operator(matrix))
        B = rng.standard_normal((matrix.shape[0], 3))
        blocked = block_lsqr(op, B, damp=0.5, atol=0.0, btol=0.0, iter_lim=15)
        columns = sequential_reference(
            op, B, damp=0.5, atol=0.0, btol=0.0, iter_lim=15
        )
        assert_strict_parity(blocked, columns)

    def test_damped_matches_ridge(self, rng):
        A = rng.standard_normal((60, 15))
        B = rng.standard_normal((60, 3))
        alpha = 0.8
        blocked = block_lsqr(
            A, B, damp=np.sqrt(alpha), atol=1e-13, btol=1e-13, iter_lim=500
        )
        ridge = np.linalg.solve(A.T @ A + alpha * np.eye(15), A.T @ B)
        assert np.allclose(blocked.X, ridge, atol=1e-8)

    def test_single_column_matches_lsqr(self, rng):
        """A 1-column block is the sequential solver, exactly."""
        A = rng.standard_normal((30, 12))
        b = rng.standard_normal(30)
        blocked = block_lsqr(A, b, damp=0.2, atol=0.0, btol=0.0, iter_lim=10)
        ref = lsqr(A, b, damp=0.2, atol=0.0, btol=0.0, iter_lim=10)
        assert blocked.X.shape == (12, 1)
        assert_strict_parity(blocked, [ref], xtol=1e-12)


class TestWarmStartsAndEdges:
    def test_warm_start_damped(self, rng):
        A = rng.standard_normal((40, 18))
        B = rng.standard_normal((40, 3))
        X0 = np.linalg.lstsq(A, B, rcond=None)[0] + 0.01 * rng.standard_normal(
            (18, 3)
        )
        kwargs = dict(damp=0.4, atol=0.0, btol=0.0, iter_lim=10)
        blocked = block_lsqr(A, B, X0=X0, **kwargs)
        columns = [
            lsqr(A, B[:, j], x0=X0[:, j], **kwargs) for j in range(3)
        ]
        assert_strict_parity(blocked, columns, xtol=1e-10)

    def test_warm_start_undamped(self, rng):
        A = rng.standard_normal((40, 18))
        B = rng.standard_normal((40, 3))
        X0 = 0.1 * rng.standard_normal((18, 3))
        kwargs = dict(damp=0.0, atol=0.0, btol=0.0, iter_lim=8)
        blocked = block_lsqr(A, B, X0=X0, **kwargs)
        columns = [
            lsqr(A, B[:, j], x0=X0[:, j], **kwargs) for j in range(3)
        ]
        assert_strict_parity(blocked, columns, xtol=1e-10)

    def test_zero_column_freezes_immediately(self, rng):
        A = rng.standard_normal((30, 10))
        B = rng.standard_normal((30, 3))
        B[:, 1] = 0.0
        blocked = block_lsqr(A, B, atol=1e-10, btol=1e-10, iter_lim=50)
        assert int(blocked.istop[1]) == 0
        assert int(blocked.itn[1]) == 0
        assert np.array_equal(blocked.X[:, 1], np.zeros(10))
        # siblings still converge
        assert int(blocked.istop[0]) in (1, 2)
        assert int(blocked.istop[2]) in (1, 2)

    def test_iter_lim_zero(self, rng):
        A = rng.standard_normal((20, 8))
        B = rng.standard_normal((20, 2))
        blocked = block_lsqr(A, B, iter_lim=0)
        refs = sequential_reference(A, B, iter_lim=0)
        for j, ref in enumerate(refs):
            assert int(blocked.itn[j]) == ref.itn
            assert np.array_equal(blocked.X[:, j], ref.x)

    def test_record_history(self, rng):
        A = rng.standard_normal((30, 12))
        B = rng.standard_normal((30, 2))
        blocked = block_lsqr(
            A, B, atol=0.0, btol=0.0, iter_lim=6, record_history=True
        )
        for j in range(2):
            ref = lsqr(
                A, B[:, j], atol=0.0, btol=0.0, iter_lim=6,
                record_history=True,
            )
            assert np.allclose(
                blocked.residual_history[j], ref.residual_history, rtol=1e-9
            )

    def test_result_adapter(self, rng):
        A = rng.standard_normal((25, 10))
        B = rng.standard_normal((25, 3))
        blocked = block_lsqr(A, B, atol=0.0, btol=0.0, iter_lim=5)
        assert isinstance(blocked, BlockLSQRResult)
        assert blocked.n_columns == 3
        assert not blocked.any_failed
        col = blocked.column(1)
        assert col.istop == int(blocked.istop[1])
        assert np.array_equal(col.x, blocked.X[:, 1])

    def test_float32_block(self, rng):
        matrix, dense = sparse_problem(rng)
        f32 = CSRMatrix.from_dense(dense.astype(np.float32))
        B = rng.standard_normal((matrix.shape[0], 3)).astype(np.float32)
        blocked = block_lsqr(f32, B, damp=0.5, atol=0.0, btol=0.0, iter_lim=15)
        assert blocked.X.dtype == np.float32
        ref = block_lsqr(
            matrix, B.astype(np.float64), damp=0.5, atol=0.0, btol=0.0,
            iter_lim=15,
        )
        assert np.max(np.abs(blocked.X - ref.X)) < 1e-4

    def test_input_validation(self, rng):
        A = rng.standard_normal((10, 5))
        with pytest.raises(ValueError):
            block_lsqr(A, np.zeros((9, 2)))
        with pytest.raises(ValueError):
            block_lsqr(A, np.zeros((10, 2)), damp=-1.0)
        with pytest.raises(ValueError):
            block_lsqr(A, np.zeros((10, 2)), X0=np.zeros((4, 2)))


class TestFaultIsolation:
    def test_faulty_column_isolated(self, rng):
        """A NaN injected into one column's product poisons only it."""
        A = rng.standard_normal((30, 12))
        B = rng.standard_normal((30, 4))
        k = B.shape[1]
        # Block product order: init rmatvec (0..k-1), then per
        # iteration matvec (k per iter) and rmatvec (k per iter) — the
        # default _matmat loops _matvec per column, so product 3k+2
        # lands on column 2 of the second iteration's forward product.
        op = FaultyOperator(as_operator(A), fail_at={3 * k + 2}, mode="nan")
        blocked = block_lsqr(op, B, atol=0.0, btol=0.0, iter_lim=10)
        assert int(blocked.istop[2]) == 8
        assert blocked.any_failed
        assert list(np.flatnonzero(blocked.failed)) == [2]
        assert np.all(np.isfinite(blocked.X))
        # siblings bitwise-match clean sequential runs
        for j in (0, 1, 3):
            ref = lsqr(A, B[:, j], atol=0.0, btol=0.0, iter_lim=10)
            assert int(blocked.istop[j]) == ref.istop
            assert int(blocked.itn[j]) == ref.itn
            assert np.allclose(blocked.X[:, j], ref.x, atol=1e-12)

    def test_inf_fault_matches_sequential_istop(self, rng):
        A = rng.standard_normal((25, 10))
        b = rng.standard_normal((25, 1))
        op = FaultyOperator(as_operator(A), fail_at={1}, mode="inf")
        blocked = block_lsqr(op, b, atol=0.0, btol=0.0, iter_lim=10)
        op2 = FaultyOperator(as_operator(A), fail_at={1}, mode="inf")
        ref = lsqr(op2, b[:, 0], atol=0.0, btol=0.0, iter_lim=10)
        assert int(blocked.istop[0]) == ref.istop == 8
        assert int(blocked.itn[0]) == ref.itn


class TestSharedBidiagonalization:
    def test_replay_matches_block_lsqr(self, rng):
        matrix, _ = sparse_problem(rng)
        B = rng.standard_normal((matrix.shape[0], 4))
        shared = SharedBidiagonalization(matrix, B, iter_lim=15)
        for alpha in (0.0, 0.05, 1.0, 25.0):
            damp = float(np.sqrt(alpha))
            replay = shared.solve(damp=damp, atol=0.0, btol=0.0)
            direct = block_lsqr(
                matrix, B, damp=damp, atol=0.0, btol=0.0, iter_lim=15
            )
            assert np.array_equal(replay.X, direct.X)
            assert np.array_equal(replay.istop, direct.istop)
            assert np.array_equal(replay.itn, direct.itn)

    def test_one_bidiagonalization_per_grid(self, rng):
        """The whole alpha grid costs one pass over the data.

        Recording performs ``iter_lim`` forward and ``iter_lim + 1``
        adjoint block products; every subsequent ``solve`` replays the
        scalar recurrences at ZERO additional operator products.
        """
        matrix, _ = sparse_problem(rng)
        op = as_operator(matrix)
        B = rng.standard_normal((matrix.shape[0], 3))
        depth = 10
        shared = SharedBidiagonalization(op, B, iter_lim=depth)
        recorded = op.n_matmat + op.n_rmatmat
        assert recorded == 2 * depth + 1
        for alpha in (0.01, 0.1, 1.0, 10.0, 100.0):
            shared.solve(damp=float(np.sqrt(alpha)), atol=0.0, btol=0.0)
        assert op.n_matmat + op.n_rmatmat == recorded

    def test_solve_deeper_than_recording_raises(self, rng):
        A = rng.standard_normal((20, 10))
        B = rng.standard_normal((20, 2))
        shared = SharedBidiagonalization(A, B, iter_lim=5)
        with pytest.raises(ValueError):
            shared.solve(iter_lim=6)

    def test_tolerance_stopping_in_replay(self, rng):
        A = rng.standard_normal((40, 15))
        B = rng.standard_normal((40, 3))
        shared = SharedBidiagonalization(A, B, iter_lim=100)
        replay = shared.solve(damp=0.5, atol=1e-8, btol=1e-8)
        direct = block_lsqr(
            A, B, damp=0.5, atol=1e-8, btol=1e-8, iter_lim=100
        )
        assert np.array_equal(replay.istop, direct.istop)
        assert np.array_equal(replay.itn, direct.itn)
        assert np.array_equal(replay.X, direct.X)
