"""Unit tests for the blocked Cholesky and triangular solves."""

import numpy as np
import pytest

from repro.linalg.cholesky import (
    NotPositiveDefiniteError,
    cholesky,
    solve_cholesky,
    solve_factored,
    solve_triangular,
)


def spd_matrix(rng, n, condition=10.0):
    A = rng.standard_normal((n, n))
    return A @ A.T + condition * np.eye(n)


class TestCholesky:
    @pytest.mark.parametrize("n", [1, 2, 5, 17, 64, 65, 130])
    def test_factorization_sizes(self, rng, n):
        A = spd_matrix(rng, n)
        L = cholesky(A)
        assert np.allclose(L @ L.T, A, atol=1e-8 * n)

    def test_factor_is_lower_triangular(self, rng):
        L = cholesky(spd_matrix(rng, 20))
        assert np.allclose(L, np.tril(L))

    def test_matches_numpy(self, rng):
        A = spd_matrix(rng, 30)
        assert np.allclose(cholesky(A), np.linalg.cholesky(A), atol=1e-9)

    @pytest.mark.parametrize("block_size", [1, 3, 16, 200])
    def test_block_size_invariance(self, rng, block_size):
        A = spd_matrix(rng, 40)
        assert np.allclose(
            cholesky(A, block_size=block_size), np.linalg.cholesky(A),
            atol=1e-9,
        )

    def test_rejects_indefinite(self, rng):
        A = spd_matrix(rng, 10)
        A -= 100.0 * np.eye(10)
        with pytest.raises(NotPositiveDefiniteError):
            cholesky(A)

    def test_rejects_negative_identity(self):
        with pytest.raises(NotPositiveDefiniteError):
            cholesky(-np.eye(4))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            cholesky(np.ones((3, 4)))

    def test_only_lower_triangle_read(self, rng):
        A = spd_matrix(rng, 12)
        corrupted = A.copy()
        corrupted[np.triu_indices(12, 1)] = 999.0
        assert np.allclose(cholesky(corrupted), cholesky(A))

    def test_diagonal_matrix(self):
        d = np.array([4.0, 9.0, 16.0])
        assert np.allclose(cholesky(np.diag(d)), np.diag(np.sqrt(d)))


class TestTriangularSolve:
    def test_lower_vector(self, rng):
        L = np.tril(rng.standard_normal((15, 15))) + 5.0 * np.eye(15)
        b = rng.standard_normal(15)
        assert np.allclose(L @ solve_triangular(L, b, lower=True), b)

    def test_upper_vector(self, rng):
        U = np.triu(rng.standard_normal((15, 15))) + 5.0 * np.eye(15)
        b = rng.standard_normal(15)
        assert np.allclose(U @ solve_triangular(U, b, lower=False), b)

    @pytest.mark.parametrize("n", [3, 64, 100])
    def test_matrix_rhs(self, rng, n):
        L = np.tril(rng.standard_normal((n, n))) + n * np.eye(n)
        B = rng.standard_normal((n, 4))
        assert np.allclose(L @ solve_triangular(L, B, lower=True), B)
        U = L.T
        assert np.allclose(U @ solve_triangular(U, B, lower=False), B)

    def test_vector_shape_preserved(self, rng):
        L = np.eye(5)
        out = solve_triangular(L, np.ones(5), lower=True)
        assert out.shape == (5,)

    def test_singular_raises(self):
        L = np.diag([1.0, 0.0, 2.0])
        with pytest.raises(np.linalg.LinAlgError):
            solve_triangular(L, np.ones(3), lower=True)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            solve_triangular(np.ones((3, 4)), np.ones(3))


class TestSolve:
    @pytest.mark.parametrize("n", [2, 20, 90])
    def test_solve_cholesky(self, rng, n):
        A = spd_matrix(rng, n)
        b = rng.standard_normal(n)
        assert np.allclose(solve_cholesky(A, b), np.linalg.solve(A, b))

    def test_solve_factored_reuse(self, rng):
        A = spd_matrix(rng, 25)
        L = cholesky(A)
        for _ in range(3):
            b = rng.standard_normal(25)
            assert np.allclose(solve_factored(L, b), np.linalg.solve(A, b))

    def test_solve_matrix_rhs(self, rng):
        A = spd_matrix(rng, 18)
        B = rng.standard_normal((18, 5))
        assert np.allclose(solve_cholesky(A, B), np.linalg.solve(A, B))

    def test_ill_conditioned_still_accurate(self, rng):
        # condition number ~1e6: solution should hold to ~1e-9 relative
        U, _ = np.linalg.qr(rng.standard_normal((30, 30)))
        A = U @ np.diag(np.logspace(0, 6, 30)) @ U.T
        A = 0.5 * (A + A.T)
        x_true = rng.standard_normal(30)
        b = A @ x_true
        x = solve_cholesky(A, b)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-8
