"""Unit tests for the from-scratch CSR matrix."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.linalg.sparse import CSRMatrix, is_sparse


def dense_fixture(rng, shape=(9, 6), density=0.4):
    dense = rng.standard_normal(shape)
    dense[rng.random(shape) > density] = 0.0
    return dense


class TestConstruction:
    def test_from_dense_round_trip(self, rng):
        dense = dense_fixture(rng)
        assert np.array_equal(CSRMatrix.from_dense(dense).to_dense(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            CSRMatrix.from_dense(np.ones(4))

    def test_from_rows(self):
        matrix = CSRMatrix.from_rows(
            [([2, 0], [3.0, 1.0]), ([], []), ([1], [5.0])], n_cols=4
        )
        expected = np.array(
            [[1.0, 0.0, 3.0, 0.0], [0.0, 0.0, 0.0, 0.0], [0.0, 5.0, 0.0, 0.0]]
        )
        assert np.array_equal(matrix.to_dense(), expected)

    def test_from_rows_sorts_columns(self):
        matrix = CSRMatrix.from_rows([([3, 1], [7.0, 2.0])], n_cols=5)
        assert np.array_equal(matrix.indices, [1, 3])
        assert np.array_equal(matrix.data, [2.0, 7.0])

    def test_from_rows_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            CSRMatrix.from_rows([([1, 2], [1.0])], n_cols=4)

    def test_scipy_round_trip(self, rng):
        dense = dense_fixture(rng)
        ours = CSRMatrix.from_scipy(sp.csr_matrix(dense))
        assert np.array_equal(ours.to_dense(), dense)
        back = ours.to_scipy()
        assert np.array_equal(back.toarray(), dense)

    def test_empty_matrix(self):
        matrix = CSRMatrix.from_dense(np.zeros((3, 4)))
        assert matrix.nnz == 0
        assert np.array_equal(matrix.to_dense(), np.zeros((3, 4)))

    def test_validation_bad_indptr(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix(np.ones(1), np.zeros(1, np.int64),
                      np.array([0, 2]), (1, 3))

    def test_validation_column_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRMatrix(np.ones(1), np.array([5]), np.array([0, 1]), (1, 3))

    def test_validation_decreasing_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(2), np.array([0, 1]), np.array([0, 2, 1]), (2, 3))

    def test_copy_is_independent(self, rng):
        original = CSRMatrix.from_dense(dense_fixture(rng))
        duplicate = original.copy()
        duplicate.data[:] = 0.0
        assert original.data.any()


class TestProducts:
    def test_matvec_matches_dense(self, rng):
        dense = dense_fixture(rng)
        matrix = CSRMatrix.from_dense(dense)
        v = rng.standard_normal(dense.shape[1])
        assert np.allclose(matrix.matvec(v), dense @ v)

    def test_rmatvec_matches_dense(self, rng):
        dense = dense_fixture(rng)
        matrix = CSRMatrix.from_dense(dense)
        u = rng.standard_normal(dense.shape[0])
        assert np.allclose(matrix.rmatvec(u), dense.T @ u)

    def test_matvec_with_empty_rows(self):
        dense = np.array([[0.0, 0.0], [1.0, 2.0], [0.0, 0.0]])
        matrix = CSRMatrix.from_dense(dense)
        assert np.allclose(matrix.matvec(np.array([1.0, 1.0])), [0.0, 3.0, 0.0])

    def test_matvec_wrong_length(self, rng):
        matrix = CSRMatrix.from_dense(dense_fixture(rng))
        with pytest.raises(ValueError, match="matvec"):
            matrix.matvec(np.ones(matrix.shape[1] + 1))

    def test_rmatvec_wrong_length(self, rng):
        matrix = CSRMatrix.from_dense(dense_fixture(rng))
        with pytest.raises(ValueError, match="rmatvec"):
            matrix.rmatvec(np.ones(matrix.shape[0] + 2))

    def test_matmat(self, rng):
        dense = dense_fixture(rng)
        matrix = CSRMatrix.from_dense(dense)
        B = rng.standard_normal((dense.shape[1], 3))
        assert np.allclose(matrix.matmat(B), dense @ B)
        assert np.allclose(matrix @ B, dense @ B)

    def test_matmat_dimension_check(self, rng):
        matrix = CSRMatrix.from_dense(dense_fixture(rng))
        with pytest.raises(ValueError, match="dimension"):
            matrix.matmat(np.ones((matrix.shape[1] + 1, 2)))

    def test_reduce_adjoint_products_out_is_bitwise_identical(self, rng):
        # The out= form must run the exact same reduction kernel as the
        # allocating form — callers reuse buffers without perturbing a
        # single bit.
        dense = dense_fixture(rng, shape=(40, 12))
        u = rng.standard_normal(40)
        for dtype in (np.float64, np.float32):
            matrix = CSRMatrix.from_dense(dense.astype(dtype))
            products = matrix.data * u.astype(dtype)[matrix._row_ids]
            reference = matrix.reduce_adjoint_products(products)
            out = np.full(matrix.shape[1], np.nan, dtype=dtype)
            result = matrix.reduce_adjoint_products(products, out=out)
            assert result is out
            assert np.array_equal(reference, result)

    def test_reduce_adjoint_products_out_validation(self, rng):
        matrix = CSRMatrix.from_dense(dense_fixture(rng))
        products = np.zeros(matrix.nnz)
        with pytest.raises(ValueError, match="out must have shape"):
            matrix.reduce_adjoint_products(
                products, out=np.zeros(matrix.shape[1] + 1)
            )
        with pytest.raises(ValueError, match="out dtype"):
            matrix.reduce_adjoint_products(
                products, out=np.zeros(matrix.shape[1], dtype=np.float32)
            )


class TestTransposeAndSlicing:
    def test_transpose_matches_dense(self, rng):
        dense = dense_fixture(rng)
        assert np.array_equal(
            CSRMatrix.from_dense(dense).T.to_dense(), dense.T
        )

    def test_double_transpose_identity(self, rng):
        dense = dense_fixture(rng)
        assert np.array_equal(
            CSRMatrix.from_dense(dense).T.T.to_dense(), dense
        )

    def test_take_rows(self, rng):
        dense = dense_fixture(rng)
        matrix = CSRMatrix.from_dense(dense)
        idx = np.array([4, 1, 1, 7])
        assert np.array_equal(matrix.take_rows(idx).to_dense(), dense[idx])

    def test_take_rows_out_of_range(self, rng):
        matrix = CSRMatrix.from_dense(dense_fixture(rng))
        with pytest.raises(IndexError):
            matrix.take_rows(np.array([matrix.shape[0]]))

    def test_take_rows_empty_selection(self, rng):
        matrix = CSRMatrix.from_dense(dense_fixture(rng))
        taken = matrix.take_rows(np.array([], dtype=np.int64))
        assert taken.shape == (0, matrix.shape[1])


class TestStatistics:
    def test_column_means(self, rng):
        dense = dense_fixture(rng)
        matrix = CSRMatrix.from_dense(dense)
        assert np.allclose(matrix.column_means(), dense.mean(axis=0))

    def test_row_norms(self, rng):
        dense = dense_fixture(rng)
        matrix = CSRMatrix.from_dense(dense)
        assert np.allclose(
            matrix.row_norms(), np.linalg.norm(dense, axis=1)
        )

    def test_normalize_rows(self, rng):
        dense = dense_fixture(rng)
        dense[0] = 0.0  # keep one empty row
        normalized = CSRMatrix.from_dense(dense).normalize_rows()
        norms = normalized.row_norms()
        nonzero = np.linalg.norm(dense, axis=1) > 0
        assert np.allclose(norms[nonzero], 1.0)
        assert np.allclose(norms[~nonzero], 0.0)

    def test_row_nnz_and_mean(self):
        dense = np.array([[1.0, 0.0], [1.0, 2.0], [0.0, 0.0]])
        matrix = CSRMatrix.from_dense(dense)
        assert np.array_equal(matrix.row_nnz(), [1, 2, 0])
        assert matrix.mean_nnz_per_row() == pytest.approx(1.0)

    def test_is_sparse_predicate(self, rng):
        dense = dense_fixture(rng)
        assert is_sparse(CSRMatrix.from_dense(dense))
        assert is_sparse(sp.csr_matrix(dense))
        assert not is_sparse(dense)


class TestDtypePropagation:
    """float32 input stays float32 through every product — the block
    kernels move half the bytes per entry compared to float64."""

    def test_float32_products_stay_float32(self, rng):
        dense = dense_fixture(rng).astype(np.float32)
        matrix = CSRMatrix.from_dense(dense)
        assert matrix.data.dtype == np.float32
        v = rng.standard_normal(matrix.shape[1]).astype(np.float32)
        u = rng.standard_normal(matrix.shape[0]).astype(np.float32)
        B = rng.standard_normal((matrix.shape[1], 3)).astype(np.float32)
        U = rng.standard_normal((matrix.shape[0], 3)).astype(np.float32)
        assert matrix.matvec(v).dtype == np.float32
        assert matrix.rmatvec(u).dtype == np.float32
        assert matrix.matmat(B).dtype == np.float32
        assert matrix.rmatmat(U).dtype == np.float32

    def test_float32_halves_memory_traffic(self, rng):
        """The bytes moved per stored entry are the dtype's itemsize:
        a float32 matrix and its product blocks occupy half the bytes
        of their float64 twins, which is the whole bandwidth story for
        these memory-bound kernels."""
        dense = dense_fixture(rng, shape=(30, 20))
        m64 = CSRMatrix.from_dense(dense)
        m32 = CSRMatrix.from_dense(dense.astype(np.float32))
        assert m32.data.nbytes * 2 == m64.data.nbytes
        B = rng.standard_normal((20, 4))
        out64 = m64.matmat(B)
        out32 = m32.matmat(B.astype(np.float32))
        assert out32.nbytes * 2 == out64.nbytes
        # and the cheaper path still computes the same product
        assert np.allclose(out32, out64, atol=1e-4)

    def test_float64_products_stay_float64(self, rng):
        dense = dense_fixture(rng)
        matrix = CSRMatrix.from_dense(dense)
        B = rng.standard_normal((matrix.shape[1], 3))
        assert matrix.matmat(B).dtype == np.float64

    def test_float32_tolerance_convergence(self, rng):
        """Single precision converges under tolerance stopping (to a
        single-precision-sized tolerance) instead of breaking down."""
        from repro.linalg.block_lsqr import block_lsqr

        dense = dense_fixture(rng, shape=(40, 15), density=0.5)
        matrix = CSRMatrix.from_dense(dense.astype(np.float32))
        B = rng.standard_normal((40, 3)).astype(np.float32)
        result = block_lsqr(matrix, B, atol=1e-4, btol=1e-4, iter_lim=200)
        assert result.X.dtype == np.float32
        assert not result.any_failed
        assert all(int(s) in (1, 2) for s in result.istop)
