"""Unit tests for the from-scratch eigensolvers."""

import numpy as np
import pytest

from repro.linalg.eigen import jacobi_eigh, lanczos_eigsh
from repro.linalg.operators import as_operator
from repro.linalg.sparse import CSRMatrix


def symmetric(rng, n):
    A = rng.standard_normal((n, n))
    return A + A.T


class TestJacobi:
    @pytest.mark.parametrize("n", [1, 2, 5, 12, 25])
    def test_matches_numpy(self, rng, n):
        A = symmetric(rng, n)
        w, V = jacobi_eigh(A)
        w_np = np.sort(np.linalg.eigvalsh(A))[::-1]
        assert np.allclose(w, w_np, atol=1e-9)
        assert np.allclose(A @ V, V * w, atol=1e-8)

    def test_eigenvectors_orthonormal(self, rng):
        _, V = jacobi_eigh(symmetric(rng, 10))
        assert np.allclose(V.T @ V, np.eye(10), atol=1e-10)

    def test_descending_order(self, rng):
        w, _ = jacobi_eigh(symmetric(rng, 8))
        assert np.all(np.diff(w) <= 1e-12)

    def test_diagonal_input(self):
        d = np.array([3.0, -1.0, 7.0])
        w, V = jacobi_eigh(np.diag(d))
        assert np.allclose(w, [7.0, 3.0, -1.0])

    def test_zero_matrix(self):
        w, V = jacobi_eigh(np.zeros((4, 4)))
        assert np.array_equal(w, np.zeros(4))
        assert np.allclose(V, np.eye(4))

    def test_asymmetric_input_symmetrized(self, rng):
        A = rng.standard_normal((6, 6))
        w, _ = jacobi_eigh(A)
        w_ref, _ = jacobi_eigh(0.5 * (A + A.T))
        assert np.allclose(w, w_ref)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            jacobi_eigh(np.ones((2, 3)))

    def test_huge_ratio_no_overflow(self):
        A = np.array([[1e200, 1.0], [1.0, -1e200]])
        w, _ = jacobi_eigh(A)
        assert np.all(np.isfinite(w))


class TestLanczos:
    def test_leading_pairs_match_numpy(self, rng):
        B = rng.standard_normal((120, 30))
        S = B @ B.T
        w, V = lanczos_eigsh(S, k=6, seed=1)
        w_ref = np.sort(np.linalg.eigvalsh(S))[::-1][:6]
        assert np.allclose(w, w_ref, rtol=1e-7)
        for i in range(6):
            residual = np.linalg.norm(S @ V[:, i] - w[i] * V[:, i])
            assert residual < 1e-6 * max(1.0, w[0])

    def test_indefinite_matrix(self, rng):
        A = symmetric(rng, 50)
        w, V = lanczos_eigsh(A, k=3, seed=2, max_iter=50)
        w_ref = np.sort(np.linalg.eigvalsh(A))[::-1][:3]
        assert np.allclose(w, w_ref, atol=1e-6)

    def test_eigenvectors_orthonormal(self, rng):
        B = rng.standard_normal((80, 20))
        _, V = lanczos_eigsh(B @ B.T, k=5, seed=3)
        assert np.allclose(V.T @ V, np.eye(5), atol=1e-8)

    def test_operator_input(self, rng):
        B = rng.standard_normal((60, 15))
        S = B @ B.T
        w_dense, _ = lanczos_eigsh(S, k=3, seed=4)
        w_op, _ = lanczos_eigsh(as_operator(S), k=3, seed=4)
        assert np.allclose(w_dense, w_op)

    def test_sparse_operator(self, rng):
        dense = rng.standard_normal((40, 40))
        dense[np.abs(dense) < 1.0] = 0.0
        S = dense + dense.T + 40 * np.eye(40)
        w, _ = lanczos_eigsh(CSRMatrix.from_dense(S), k=2, seed=5)
        w_ref = np.sort(np.linalg.eigvalsh(S))[::-1][:2]
        assert np.allclose(w, w_ref, atol=1e-6)

    def test_k_equals_m(self, rng):
        A = symmetric(rng, 8)
        w, _ = lanczos_eigsh(A, k=8, seed=6, max_iter=8)
        w_ref = np.sort(np.linalg.eigvalsh(A))[::-1]
        assert np.allclose(w, w_ref, atol=1e-7)

    def test_validation(self, rng):
        A = symmetric(rng, 5)
        with pytest.raises(ValueError):
            lanczos_eigsh(A, k=0)
        with pytest.raises(ValueError):
            lanczos_eigsh(A, k=6)
        with pytest.raises(ValueError):
            lanczos_eigsh(np.ones((3, 4)), k=1)

    def test_projection_matrix_spectrum(self, rng):
        """Eigenvalues of the LDA graph matrix W: exactly c ones."""
        from repro.core.graph import lda_weight_matrix

        y = rng.integers(0, 4, 30)
        y[:4] = np.arange(4)
        W = lda_weight_matrix(y, 4)
        w, _ = lanczos_eigsh(W, k=5, seed=7, max_iter=30)
        assert np.allclose(w[:4], 1.0, atol=1e-8)
        assert abs(w[4]) < 1e-8
