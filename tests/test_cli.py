"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench", "mnist"])
        assert args.dataset == "mnist"
        assert args.splits == 3
        assert "srda" in args.algorithms

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "imagenet"])

    def test_table1_requires_sizes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SRDA" in out
        assert "pie, isolet, mnist, news" in out

    def test_table1(self, capsys):
        code = main(
            ["table1", "--m", "1000", "--n", "500", "--c", "10", "--s", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LDA" in out
        assert "SRDA (LSQR, sparse)" in out

    def test_bench_small_run(self, capsys):
        code = main(
            [
                "bench", "mnist",
                "--algorithms", "srda", "idrqr",
                "--sizes", "4,8",
                "--splits", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "error rates" in out
        assert "SRDA" in out and "IDR/QR" in out
        assert "Computational time" in out

    def test_bench_ratio_sizes(self, capsys):
        code = main(
            [
                "bench", "news",
                "--algorithms", "srda",
                "--sizes", "0.05",
                "--splits", "1",
            ]
        )
        assert code == 0
        assert "5%" in capsys.readouterr().out

    def test_bench_memory_budget(self, capsys):
        code = main(
            [
                "bench", "news",
                "--algorithms", "lda", "srda",
                "--sizes", "0.05",
                "--splits", "1",
                "--memory-budget-gb", "0.01",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "—" in out  # LDA blocked by the budget

    def test_bench_unknown_algorithm(self):
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(["bench", "mnist", "--algorithms", "svm"])


class TestBuilderContracts:
    def test_small_builders_cover_declared_sizes(self):
        """Every CLI small-scale dataset must be able to serve its own
        declared default training sizes (plus one test sample/class)."""
        import numpy as np

        from repro.cli import DATASET_BUILDERS

        for name, builder in DATASET_BUILDERS.items():
            dataset = builder("small", 0)
            sizes = dataset.metadata.get("train_sizes")
            if sizes is None:
                continue  # ratio-based datasets always fit
            largest = max(sizes)
            if "train_pool" in dataset.metadata:
                pool_labels = dataset.y[dataset.metadata["train_pool"]]
                per_class = np.bincount(pool_labels).min()
                assert per_class >= largest, (name, per_class, largest)
            else:
                per_class = np.bincount(dataset.y).min()
                assert per_class >= largest + 1, (name, per_class, largest)
