"""Property-based tests for model and dataset persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.srda import SRDA
from repro.datasets.base import Dataset
from repro.datasets.cache import load_dataset, save_dataset
from repro.io import load_model, save_model
from repro.linalg.sparse import CSRMatrix


def classification_case(seed, max_m=25, max_n=10, max_c=4):
    rng = np.random.default_rng(seed)
    c = int(rng.integers(2, max_c + 1))
    m = int(rng.integers(2 * c, max_m))
    n = int(rng.integers(2, max_n))
    y = np.concatenate([np.arange(c), rng.integers(0, c, m - c)])
    rng.shuffle(y)
    X = 2.0 * rng.standard_normal((c, n))[y] + rng.standard_normal((m, n))
    return X, y


@settings(max_examples=20, deadline=None)
@given(
    st.integers(0, 2**31 - 1),
    st.floats(1e-3, 1e3),
    st.sampled_from(["normal", "lsqr"]),
)
def test_srda_round_trip_preserves_behavior(tmp_path_factory, seed, alpha,
                                            solver):
    X, y = classification_case(seed)
    model = SRDA(alpha=alpha, solver=solver, max_iter=50).fit(X, y)
    path = tmp_path_factory.mktemp("models") / f"m{seed}"
    loaded = load_model(save_model(model, path))
    assert np.allclose(loaded.transform(X), model.transform(X), atol=1e-12)
    assert np.array_equal(loaded.predict(X), model.predict(X))
    assert loaded.alpha == model.alpha


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_dense_dataset_round_trip(tmp_path_factory, seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(2, 20))
    n = int(rng.integers(1, 8))
    dataset = Dataset(
        "toy",
        rng.standard_normal((m, n)),
        rng.integers(0, 3, m),
        metadata={"split_protocol": "ratio", "train_ratios": [0.5],
                  "pool": rng.integers(0, m, 4)},
    )
    path = tmp_path_factory.mktemp("datasets") / f"d{seed}"
    loaded = load_dataset(save_dataset(dataset, path))
    assert np.array_equal(loaded.X, dataset.X)
    assert np.array_equal(loaded.y, dataset.y)
    assert loaded.metadata["split_protocol"] == "ratio"
    assert np.array_equal(loaded.metadata["pool"], dataset.metadata["pool"])


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_sparse_dataset_round_trip(tmp_path_factory, seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(2, 15))
    n = int(rng.integers(2, 10))
    dense = rng.standard_normal((m, n))
    dense[rng.random((m, n)) < 0.6] = 0.0
    dataset = Dataset(
        "toy", CSRMatrix.from_dense(dense), rng.integers(0, 2, m)
    )
    path = tmp_path_factory.mktemp("datasets") / f"s{seed}"
    loaded = load_dataset(save_dataset(dataset, path))
    assert loaded.is_sparse
    assert np.array_equal(loaded.X.to_dense(), dense)
    assert loaded.X.nnz == dataset.X.nnz
