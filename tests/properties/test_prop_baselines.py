"""Property-based tests for the baseline estimators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.idrqr import IDRQR
from repro.baselines.lda import LDA
from repro.baselines.pca import PCA
from repro.baselines.rlda import RLDA


def classification_case(seed, max_m=30, max_n=12, max_c=4):
    rng = np.random.default_rng(seed)
    c = int(rng.integers(2, max_c + 1))
    m = int(rng.integers(2 * c + 2, max_m))
    n = int(rng.integers(2, max_n))
    y = np.concatenate([np.arange(c), rng.integers(0, c, m - c)])
    rng.shuffle(y)
    centers = 3.0 * rng.standard_normal((c, n))
    X = centers[y] + rng.standard_normal((m, n))
    return X, y, c


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_lda_eigenvalues_bounded(seed):
    """LDA trace ratios always lie in [0, 1]: S_b ⪯ S_t."""
    X, y, _ = classification_case(seed)
    model = LDA().fit(X, y)
    assert np.all(model.eigenvalues_ >= -1e-8)
    assert np.all(model.eigenvalues_ <= 1.0 + 1e-8)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_embedding_dim_never_exceeds_c_minus_1(seed):
    X, y, c = classification_case(seed)
    for model in (LDA(), RLDA(alpha=1.0), IDRQR(alpha=1.0)):
        model.fit(X, y)
        assert model.components_.shape[1] <= c - 1


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_predictions_within_training_label_set(seed):
    X, y, _ = classification_case(seed)
    query = np.random.default_rng(seed + 1).standard_normal(X.shape)
    for model in (LDA(), RLDA(alpha=1.0), IDRQR(alpha=1.0)):
        model.fit(X, y)
        assert set(model.predict(query)) <= set(np.unique(y))


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_rlda_finite_for_any_alpha(seed):
    X, y, _ = classification_case(seed)
    for alpha in (1e-6, 1.0, 1e6):
        model = RLDA(alpha=alpha).fit(X, y)
        assert np.all(np.isfinite(model.components_))


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_pca_variance_ordering_and_total(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(4, 25))
    n = int(rng.integers(2, 10))
    X = rng.standard_normal((m, n))
    model = PCA().fit(X)
    # non-increasing explained variance
    assert np.all(np.diff(model.explained_variance_) <= 1e-10)
    # total variance preserved
    centered = X - X.mean(axis=0)
    total = np.sum(centered**2) / (m - 1)
    assert abs(model.explained_variance_.sum() - total) < 1e-8 * max(1, total)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_pca_transform_inverse_round_trip(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(4, 20))
    n = int(rng.integers(2, 8))
    X = rng.standard_normal((m, n))
    model = PCA().fit(X)
    assert np.allclose(
        model.inverse_transform(model.transform(X)), X, atol=1e-8
    )


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_idrqr_components_in_centroid_span(seed):
    X, y, c = classification_case(seed)
    model = IDRQR(alpha=1.0).fit(X, y)
    mean = X.mean(axis=0)
    centroids = np.vstack(
        [X[y == k].mean(axis=0) - mean for k in range(c)]
    )
    Q, _ = np.linalg.qr(centroids.T)
    projected = Q @ (Q.T @ model.components_)
    assert np.allclose(projected, model.components_, atol=1e-6)
