"""Property-based tests for the vectorizer, kernels, and metrics."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.kernel_srda import linear_kernel, polynomial_kernel, rbf_kernel
from repro.datasets.vectorizer import TfVectorizer, strip_suffix, tokenize
from repro.eval.metrics import (
    confusion_matrix,
    error_rate,
    macro_f1,
    precision_recall_f1,
)

words = st.text(alphabet="abcdefghij", min_size=2, max_size=8)
documents = st.lists(words, min_size=1, max_size=30).map(" ".join)


@settings(max_examples=50, deadline=None)
@given(documents)
def test_tokenize_output_invariants(document):
    tokens = tokenize(document)
    for token in tokens:
        assert token.islower()
        assert token.isalpha()
        assert len(token) >= 2


@settings(max_examples=50, deadline=None)
@given(words)
def test_strip_suffix_never_lengthens(word):
    stem = strip_suffix(word)
    assert len(stem) <= len(word)
    assert word.startswith(stem)


@settings(max_examples=25, deadline=None)
@given(st.lists(documents, min_size=3, max_size=10))
def test_vectorizer_rows_unit_or_empty(corpus):
    vec = TfVectorizer(min_df=1, max_df_ratio=1.0, stem=False)
    try:
        X = vec.fit_transform(corpus)
    except ValueError:
        assume(False)  # corpora with no valid tokens are out of scope
    norms = X.row_norms()
    assert np.all((np.abs(norms - 1.0) < 1e-9) | (norms == 0.0))
    assert X.shape == (len(corpus), vec.n_features)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1), st.floats(0.01, 10.0))
def test_rbf_gram_is_psd(seed, gamma):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((int(rng.integers(2, 15)), 3))
    K = rbf_kernel(X, X, gamma)
    eigvals = np.linalg.eigvalsh(0.5 * (K + K.T))
    assert eigvals.min() > -1e-8


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_linear_gram_is_psd(seed):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((int(rng.integers(2, 15)), 4))
    K = linear_kernel(X, X)
    eigvals = np.linalg.eigvalsh(0.5 * (K + K.T))
    assert eigvals.min() > -1e-6


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 3))
def test_even_degree_poly_gram_psd(seed, half_degree):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((int(rng.integers(2, 10)), 3))
    K = polynomial_kernel(X, X, degree=2 * half_degree, coef0=1.0, gamma=1.0)
    eigvals = np.linalg.eigvalsh(0.5 * (K + K.T))
    assert eigvals.min() > -1e-6 * max(1.0, np.abs(K).max())


def labeled_pairs(seed, max_c=5, max_m=40):
    rng = np.random.default_rng(seed)
    c = int(rng.integers(2, max_c + 1))
    m = int(rng.integers(c, max_m))
    y_true = rng.integers(0, c, m)
    y_pred = rng.integers(0, c, m)
    return y_true, y_pred, c


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_accuracy_identity(seed):
    """error = 1 − trace(confusion)/m, always."""
    y_true, y_pred, c = labeled_pairs(seed)
    matrix = confusion_matrix(y_true, y_pred, c)
    expected = 1.0 - np.trace(matrix) / len(y_true)
    assert abs(error_rate(y_true, y_pred) - expected) < 1e-12


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_prf_bounded(seed):
    y_true, y_pred, c = labeled_pairs(seed)
    p, r, f = precision_recall_f1(y_true, y_pred, c)
    for values in (p, r, f):
        assert np.all(values >= 0.0) and np.all(values <= 1.0)
    assert 0.0 <= macro_f1(y_true, y_pred, c) <= 1.0


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_f1_between_min_and_max_of_p_r(seed):
    """Harmonic mean lies between its arguments (where defined)."""
    y_true, y_pred, c = labeled_pairs(seed)
    p, r, f = precision_recall_f1(y_true, y_pred, c)
    defined = (p + r) > 0
    assert np.all(f[defined] <= np.maximum(p, r)[defined] + 1e-12)
    assert np.all(f[defined] >= np.minimum(p, r)[defined] - 1e-12)
