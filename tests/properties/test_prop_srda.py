"""Property-based tests for SRDA's core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.srda import SRDA
from repro.linalg.sparse import CSRMatrix


def classification_case(seed, max_m=30, max_n=15, max_c=5):
    rng = np.random.default_rng(seed)
    c = int(rng.integers(2, max_c + 1))
    m = int(rng.integers(2 * c, max_m))
    n = int(rng.integers(2, max_n))
    y = np.concatenate([np.arange(c), rng.integers(0, c, m - c)])
    rng.shuffle(y)
    centers = 3.0 * rng.standard_normal((c, n))
    X = centers[y] + rng.standard_normal((m, n))
    return X, y, c


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_embedding_dimension_always_c_minus_1(seed):
    X, y, c = classification_case(seed)
    Z = SRDA(alpha=1.0, solver="normal").fit_transform(X, y)
    assert Z.shape == (X.shape[0], c - 1)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1), st.floats(1e-3, 1e3))
def test_normal_and_lsqr_agree(seed, alpha):
    X, y, _ = classification_case(seed, max_m=20, max_n=10)
    a = SRDA(alpha=alpha, solver="normal").fit(X, y)
    b = SRDA(alpha=alpha, solver="lsqr", max_iter=3000, tol=1e-14).fit(X, y)
    scale = max(1.0, np.abs(a.components_).max())
    assert np.abs(a.components_ - b.components_).max() < 1e-5 * scale


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_sample_order_invariance(seed):
    X, y, _ = classification_case(seed)
    perm = np.random.default_rng(seed + 1).permutation(X.shape[0])
    a = SRDA(alpha=1.0, solver="normal").fit(X, y)
    b = SRDA(alpha=1.0, solver="normal").fit(X[perm], y[perm])
    assert np.allclose(a.components_, b.components_, atol=1e-7)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_sparse_dense_agreement(seed):
    X, y, _ = classification_case(seed, max_m=20, max_n=10)
    X = X.copy()
    X[np.abs(X) < 0.8] = 0.0
    dense_model = SRDA(alpha=1.0, solver="normal", centering=False).fit(X, y)
    sparse_model = SRDA(alpha=1.0, solver="lsqr", max_iter=3000,
                        tol=1e-14).fit(CSRMatrix.from_dense(X), y)
    assert np.abs(
        dense_model.components_ - sparse_model.components_
    ).max() < 1e-5


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1), st.floats(10.0, 1e4))
def test_translation_invariant_predictions(seed, shift_size):
    X, y, _ = classification_case(seed)
    shift = shift_size * np.ones(X.shape[1])
    a = SRDA(alpha=1.0, solver="normal").fit(X, y)
    b = SRDA(alpha=1.0, solver="normal").fit(X + shift, y)
    assert np.array_equal(a.predict(X), b.predict(X + shift))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_transform_is_affine(seed):
    """transform must be exactly X @ components + intercept."""
    X, y, _ = classification_case(seed)
    model = SRDA(alpha=1.0, solver="normal").fit(X, y)
    Z = model.transform(X)
    assert np.allclose(Z, X @ model.components_ + model.intercept_, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_predictions_match_embedding_centroids(seed):
    X, y, c = classification_case(seed)
    model = SRDA(alpha=1.0, solver="normal").fit(X, y)
    Z = model.transform(X)
    predictions = model.predict(X)
    for i in range(X.shape[0]):
        distances = np.linalg.norm(model.centroids_ - Z[i], axis=1)
        assert predictions[i] == model.classes_[np.argmin(distances)]
