"""Property-based tests for the graph-embedding view of LDA."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import (
    between_class_scatter,
    between_scatter_via_graph,
    graph_laplacian,
    knn_affinity,
    lda_weight_matrix,
    scaled_indicator,
    total_scatter,
    within_class_scatter,
)


def labeled_case(seed, max_m=25, max_n=8, max_c=5):
    rng = np.random.default_rng(seed)
    c = int(rng.integers(2, max_c + 1))
    m = int(rng.integers(c + 1, max_m))
    n = int(rng.integers(1, max_n))
    y = np.concatenate([np.arange(c), rng.integers(0, c, m - c)])
    rng.shuffle(y)
    X = rng.standard_normal((m, n))
    return X, y, c


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_eqn7_identity(seed):
    """S_b = X̄ᵀWX̄ for every labeling and every data matrix."""
    X, y, c = labeled_case(seed)
    direct = between_class_scatter(X, y, c)
    via_graph = between_scatter_via_graph(X, y, c)
    scale = max(1.0, np.abs(direct).max())
    assert np.abs(direct - via_graph).max() < 1e-8 * scale


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_scatter_decomposition(seed):
    """S_t = S_b + S_w always."""
    X, y, c = labeled_case(seed)
    St = total_scatter(X)
    Sb = between_class_scatter(X, y, c)
    Sw = within_class_scatter(X, y, c)
    scale = max(1.0, np.abs(St).max())
    assert np.abs(St - (Sb + Sw)).max() < 1e-8 * scale


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_w_factorization_and_projection(seed):
    """W = EEᵀ, W is a projection (W² = W), trace(W) = c."""
    X, y, c = labeled_case(seed)
    W = lda_weight_matrix(y, c)
    E = scaled_indicator(y, c)
    assert np.abs(E @ E.T - W).max() < 1e-10
    assert np.abs(W @ W - W).max() < 1e-8
    assert abs(np.trace(W) - c) < 1e-8


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_w_row_sums_one(seed):
    _, y, c = labeled_case(seed)
    W = lda_weight_matrix(y, c)
    assert np.abs(W.sum(axis=1) - 1.0).max() < 1e-10


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 4))
def test_knn_graph_invariants(seed, k):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(k + 2, 20))
    X = rng.standard_normal((m, 3))
    W = knn_affinity(X, n_neighbors=k)
    # symmetric, hollow diagonal, at least k neighbors per row
    assert np.array_equal(W, W.T)
    assert np.all(np.diag(W) == 0.0)
    assert np.all((W > 0).sum(axis=1) >= k)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_laplacian_psd_and_nullspace(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(5, 20))
    X = rng.standard_normal((m, 3))
    W = knn_affinity(X, n_neighbors=3)
    L = graph_laplacian(W)
    eigvals = np.linalg.eigvalsh(0.5 * (L + L.T))
    assert eigvals.min() > -1e-8
    assert np.abs(L @ np.ones(m)).max() < 1e-10
