"""Property-based tests for ShardedOperator (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg.operators import as_operator
from repro.linalg.sparse import CSRMatrix
from repro.parallel import ShardedOperator, shard_bounds

pytestmark = pytest.mark.parallel


def sparse_arrays(max_rows=16, max_cols=10):
    shapes = st.tuples(
        st.integers(1, max_rows), st.integers(1, max_cols)
    )
    return shapes.flatmap(
        lambda shape: hnp.arrays(
            np.float64,
            shape,
            elements=st.one_of(
                st.just(0.0),
                st.floats(-10, 10, allow_nan=False, width=64),
            ),
        )
    )


@settings(max_examples=60, deadline=None)
@given(sparse_arrays(), st.integers(1, 20), st.integers(0, 2**31 - 1))
def test_csr_products_bitwise_for_any_shard_count(dense, n_shards, seed):
    """CSR matvec/rmatvec/matmat never depend on the shard layout."""
    matrix = CSRMatrix.from_dense(dense)
    m, n = matrix.shape
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n)
    u = rng.standard_normal(m)
    B = rng.standard_normal((n, 3))
    direct = as_operator(matrix)
    with ShardedOperator(matrix, n_shards=n_shards) as op:
        assert np.array_equal(op.matvec(v), direct.matvec(v))
        assert np.array_equal(op.rmatvec(u), direct.rmatvec(u))
        assert np.array_equal(op.matmat(B), direct.matmat(B))


@settings(max_examples=60, deadline=None)
@given(sparse_arrays(), st.integers(1, 20), st.integers(0, 2**31 - 1))
def test_rmatmat_close_for_any_shard_count(dense, n_shards, seed):
    """The adjoint block fold stays within float64 fold tolerance."""
    matrix = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(seed)
    U = rng.standard_normal((matrix.shape[0], 2))
    direct = as_operator(matrix)
    with ShardedOperator(matrix, n_shards=n_shards) as op:
        np.testing.assert_allclose(
            op.rmatmat(U), direct.rmatmat(U), rtol=1e-10, atol=1e-12
        )


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 10**6), st.integers(1, 64))
def test_shard_bounds_partition_rows(m, n_shards):
    bounds = shard_bounds(m, n_shards)
    assert bounds[0][0] == 0
    assert bounds[-1][1] == m
    assert all(start < stop for start, stop in bounds)
    assert all(
        prev_stop == start
        for (_, prev_stop), (start, _) in zip(bounds, bounds[1:])
    )
    sizes = [stop - start for start, stop in bounds]
    assert max(sizes) - min(sizes) <= 1
