"""Property-based parity for the CSR kernel dispatch layer.

Random shapes, densities, and dtypes; the invariant is always the same:
whatever backend runs, the dispatch functions return byte-identical
results to the pure-numpy reference kernels of ``CSRMatrix``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import kernels
from repro.linalg.sparse import CSRMatrix

BACKENDS = ("reference",) + (
    ("compiled",) if kernels.compiled_available() else ()
)


def csr_case(seed):
    """A random CSR matrix plus conforming operands for every kernel."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 40))
    n = int(rng.integers(1, 30))
    density = float(rng.uniform(0.0, 1.0))
    dtype = np.float32 if rng.integers(2) else np.float64
    dense = rng.standard_normal((m, n))
    dense[rng.random((m, n)) > density] = 0.0
    matrix = CSRMatrix.from_dense(dense.astype(dtype))
    k = int(rng.integers(1, 5))
    return (
        matrix,
        rng.standard_normal(n).astype(dtype),
        rng.standard_normal(m).astype(dtype),
        rng.standard_normal((n, k)).astype(dtype),
        rng.standard_normal((m, k)).astype(dtype),
    )


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_dispatch_bitwise_equals_reference(seed):
    matrix, v, u, B, U = csr_case(seed)
    want = (
        matrix.matvec(v),
        matrix.rmatvec(u),
        matrix.matmat(B),
        matrix.rmatmat(U),
    )
    for backend in BACKENDS:
        with kernels.use_backend(backend):
            got = (
                kernels.csr_matvec(matrix, v),
                kernels.csr_rmatvec(matrix, u),
                kernels.csr_matmat(matrix, B),
                kernels.csr_rmatmat(matrix, U),
            )
        for g, w in zip(got, want):
            assert g.dtype == w.dtype
            assert g.tobytes() == w.tobytes()


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_adjoint_two_stage_bitwise(seed):
    """Shard decomposition (products then reduce) equals the one-shot
    adjoint under every backend — the sharded-rmatvec invariant."""
    matrix, _, u, _, _ = csr_case(seed)
    want = matrix.rmatvec(u)
    for backend in BACKENDS:
        with kernels.use_backend(backend):
            products = kernels.csr_adjoint_products(matrix, u)
            reduced = kernels.csr_reduce_adjoint(matrix, products)
        assert products.tobytes() == (
            (matrix.data * u[matrix._row_ids]).tobytes()
        )
        assert reduced.tobytes() == want.tobytes()


@pytest.mark.skipif(
    len(BACKENDS) < 2, reason="compiled kernel extension not built"
)
@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_backends_agree_with_each_other(seed):
    """Direct compiled-vs-reference comparison, independent of the
    reference-methods cross-check above."""
    matrix, v, u, B, U = csr_case(seed)
    results = {}
    for backend in BACKENDS:
        with kernels.use_backend(backend):
            results[backend] = (
                kernels.csr_matvec(matrix, v).tobytes(),
                kernels.csr_rmatvec(matrix, u).tobytes(),
                kernels.csr_matmat(matrix, B).tobytes(),
                kernels.csr_rmatmat(matrix, U).tobytes(),
            )
    assert results["reference"] == results["compiled"]
