"""Property-based tests for LSQR against closed-form oracles."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.lsqr import lsqr


def random_problem(seed, max_m=25, max_n=15):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(2, max_m))
    n = int(rng.integers(1, max_n))
    A = rng.standard_normal((m, n))
    b = rng.standard_normal(m)
    return A, b


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_converged_solution_matches_lstsq(seed):
    A, b = random_problem(seed)
    result = lsqr(A, b, atol=1e-13, btol=1e-13, iter_lim=2000)
    expected = np.linalg.lstsq(A, b, rcond=None)[0]
    assert np.allclose(result.x, expected, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1), st.floats(1e-3, 1e3))
def test_damped_solution_matches_ridge(seed, alpha):
    A, b = random_problem(seed)
    n = A.shape[1]
    result = lsqr(
        A, b, damp=np.sqrt(alpha), atol=1e-13, btol=1e-13, iter_lim=2000
    )
    expected = np.linalg.solve(A.T @ A + alpha * np.eye(n), A.T @ b)
    assert np.allclose(result.x, expected, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_normal_equations_optimality(seed):
    """At convergence Aᵀ(b − Ax) ≈ 0 — first-order optimality."""
    A, b = random_problem(seed)
    result = lsqr(A, b, atol=1e-13, btol=1e-13, iter_lim=2000)
    gradient = A.T @ (b - A @ result.x)
    scale = max(1.0, np.linalg.norm(A, ord="fro") * np.linalg.norm(b))
    assert np.linalg.norm(gradient) < 1e-6 * scale


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 30))
def test_iteration_cap_always_respected(seed, cap):
    A, b = random_problem(seed)
    result = lsqr(A, b, iter_lim=cap, atol=0, btol=0)
    assert result.itn <= cap


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_residual_monotone_nonincreasing(seed):
    A, b = random_problem(seed)
    result = lsqr(A, b, iter_lim=30, atol=0, btol=0, record_history=True)
    history = np.asarray(result.residual_history)
    assert np.all(np.diff(history) <= 1e-9)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1), st.floats(0.0, 10.0))
def test_damping_shrinks_solution_norm(seed, extra_damp):
    A, b = random_problem(seed)
    base = lsqr(A, b, damp=0.1, atol=1e-12, btol=1e-12, iter_lim=2000)
    damped = lsqr(
        A, b, damp=0.1 + extra_damp, atol=1e-12, btol=1e-12, iter_lim=2000
    )
    assert damped.xnorm <= base.xnorm + 1e-8
