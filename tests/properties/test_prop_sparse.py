"""Property-based tests for the CSR matrix (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg.sparse import CSRMatrix


def sparse_arrays(max_rows=12, max_cols=10):
    """Dense arrays with many exact zeros, as CSR inputs."""
    shapes = st.tuples(
        st.integers(1, max_rows), st.integers(1, max_cols)
    )
    return shapes.flatmap(
        lambda shape: hnp.arrays(
            np.float64,
            shape,
            elements=st.one_of(
                st.just(0.0),
                st.floats(-10, 10, allow_nan=False, width=64),
            ),
        )
    )


@settings(max_examples=60, deadline=None)
@given(sparse_arrays())
def test_round_trip(dense):
    assert np.array_equal(CSRMatrix.from_dense(dense).to_dense(), dense)


@settings(max_examples=60, deadline=None)
@given(sparse_arrays(), st.integers(0, 2**31 - 1))
def test_matvec_agrees_with_dense(dense, seed):
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(dense.shape[1])
    matrix = CSRMatrix.from_dense(dense)
    assert np.allclose(matrix.matvec(v), dense @ v, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(sparse_arrays(), st.integers(0, 2**31 - 1))
def test_rmatvec_is_transpose_matvec(dense, seed):
    rng = np.random.default_rng(seed)
    u = rng.standard_normal(dense.shape[0])
    matrix = CSRMatrix.from_dense(dense)
    assert np.allclose(matrix.rmatvec(u), matrix.T.matvec(u), atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(sparse_arrays(), st.integers(0, 2**31 - 1))
def test_adjoint_identity(dense, seed):
    """⟨Av, u⟩ = ⟨v, Aᵀu⟩ — the defining property rmatvec must satisfy."""
    rng = np.random.default_rng(seed)
    matrix = CSRMatrix.from_dense(dense)
    v = rng.standard_normal(dense.shape[1])
    u = rng.standard_normal(dense.shape[0])
    lhs = matrix.matvec(v) @ u
    rhs = v @ matrix.rmatvec(u)
    assert abs(lhs - rhs) < 1e-8 * max(1.0, abs(lhs))


@settings(max_examples=60, deadline=None)
@given(sparse_arrays())
def test_double_transpose_identity(dense):
    matrix = CSRMatrix.from_dense(dense)
    assert np.array_equal(matrix.T.T.to_dense(), dense)


@settings(max_examples=60, deadline=None)
@given(sparse_arrays())
def test_nnz_preserved_by_transpose(dense):
    matrix = CSRMatrix.from_dense(dense)
    assert matrix.T.nnz == matrix.nnz


@settings(max_examples=60, deadline=None)
@given(sparse_arrays(), st.integers(0, 2**31 - 1))
def test_take_rows_matches_fancy_indexing(dense, seed):
    rng = np.random.default_rng(seed)
    n_take = rng.integers(0, dense.shape[0] + 1)
    idx = rng.integers(0, dense.shape[0], size=n_take)
    matrix = CSRMatrix.from_dense(dense)
    assert np.array_equal(matrix.take_rows(idx).to_dense(), dense[idx])


@settings(max_examples=60, deadline=None)
@given(sparse_arrays())
def test_column_means_match_dense(dense):
    matrix = CSRMatrix.from_dense(dense)
    assert np.allclose(matrix.column_means(), dense.mean(axis=0), atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(sparse_arrays())
def test_normalized_rows_are_unit_or_zero(dense):
    normalized = CSRMatrix.from_dense(dense).normalize_rows()
    norms = normalized.row_norms()
    assert np.all(
        (np.abs(norms - 1.0) < 1e-9) | (norms == 0.0)
    )
