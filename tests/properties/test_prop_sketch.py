"""Property-based tests for the sketching operators (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.contracts import verify_operator
from repro.linalg.sketch import (
    SKETCH_KINDS,
    SRHTOperator,
    sketch_operator,
)

kinds = st.sampled_from(SKETCH_KINDS)
seeds = st.integers(0, 2**31 - 1)
# m >= 16 keeps the adjoint probe vectors long enough to be
# informative; s <= m keeps SRHT legal (its cap is the padded
# power of two, which is >= m).
dims = st.tuples(st.integers(16, 96), st.integers(1, 96)).map(
    lambda t: (t[0], min(t[0], t[1]))
)


@settings(max_examples=60, deadline=None)
@given(kinds, dims, seeds)
def test_adjoint_contract_holds_for_any_draw(kind, dims, seed):
    """Every sketch family satisfies <Sv, u> = <v, S'u> exactly."""
    m, s = dims
    S = sketch_operator(kind, m, s, seed=seed)
    assert verify_operator(S, rng=0).ok


@settings(max_examples=60, deadline=None)
@given(kinds, dims, seeds)
def test_same_seed_is_bitwise_identical(kind, dims, seed):
    """Equal parameters give bitwise-equal products — no hidden state."""
    m, s = dims
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(m)
    B = rng.standard_normal((m, 3))
    a = sketch_operator(kind, m, s, seed=seed)
    b = sketch_operator(kind, m, s, seed=seed)
    assert np.array_equal(a.matvec(v), b.matvec(v))
    assert np.array_equal(a.matmat(B), b.matmat(B))
    # ... and the draw really depends on the seed.
    c = sketch_operator(kind, m, s, seed=seed + 1)
    assert not np.array_equal(
        np.asarray(a.matmat(np.eye(m))), np.asarray(c.matmat(np.eye(m)))
    )


@settings(max_examples=60, deadline=None)
@given(kinds, dims, seeds)
def test_float32_dtype_is_preserved(kind, dims, seed):
    """float32 sketches keep float32 products in every direction."""
    m, s = dims
    S = sketch_operator(kind, m, s, seed=seed, dtype=np.float32)
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(m).astype(np.float32)
    u = rng.standard_normal(s).astype(np.float32)
    assert S.matvec(v).dtype == np.float32
    assert S.rmatvec(u).dtype == np.float32
    assert S.matmat(np.tile(v[:, None], 2)).dtype == np.float32
    assert S.rmatmat(np.tile(u[:, None], 2)).dtype == np.float32


@settings(max_examples=25, deadline=None)
@given(kinds, seeds)
def test_embedding_distortion_is_bounded_for_gaussian_vectors(kind, seed):
    """|‖Sx‖² − ‖x‖²| ≤ 0.75 ‖x‖² for Gaussian x at s = 256, m = 512.

    This is the probabilistic guarantee the preconditioner rides on
    (E[SᵀS] = I with variance O(1/s)); for Gaussian test vectors the
    deviation concentrates near ~√(2/s) ≈ 9%, so 75% gives many
    standard deviations of slack.  (The bound is *not* adversarial:
    a vector aimed at a CountSketch hash collision can cancel —
    which is exactly why the preconditioner only needs bounded,
    not pointwise-tiny, distortion.)
    """
    m, s = 512, 256
    S = sketch_operator(kind, m, s, seed=seed)
    x = np.random.default_rng(seed).standard_normal(m)
    norm_sq = float(x @ x)
    sketched_sq = float(np.linalg.norm(S.matvec(x)) ** 2)
    assert abs(sketched_sq - norm_sq) <= 0.75 * norm_sq


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 128), seeds)
def test_full_srht_is_an_exact_isometry(m, seed):
    """SRHT with s = padded keeps every sample: ‖Sx‖ = ‖x‖ exactly.

    D is diagonal ±1, H/√m2 is orthogonal, and taking all m2 rows makes
    P the identity — so the only error is float roundoff.
    """
    S = SRHTOperator(m, sketch_size=1, seed=seed)
    full = SRHTOperator(m, sketch_size=S.padded, seed=seed)
    x = np.random.default_rng(seed).standard_normal(m)
    np.testing.assert_allclose(
        np.linalg.norm(full.matvec(x)), np.linalg.norm(x), rtol=1e-10
    )
