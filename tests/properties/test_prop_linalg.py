"""Property-based tests for Cholesky, Gram–Schmidt, and cross-product SVD."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.cholesky import cholesky, solve_cholesky
from repro.linalg.gram_schmidt import orthonormality_error, orthonormalize
from repro.linalg.svd import cross_product_svd


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 40))
def test_cholesky_reconstruction(seed, n):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    A = A @ A.T + n * np.eye(n)
    L = cholesky(A)
    assert np.allclose(L @ L.T, A, atol=1e-7 * n)
    assert np.allclose(L, np.tril(L))


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 30))
def test_cholesky_solve_matches_numpy(seed, n):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    A = A @ A.T + n * np.eye(n)
    b = rng.standard_normal(n)
    assert np.allclose(solve_cholesky(A, b), np.linalg.solve(A, b), atol=1e-7)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 15), st.integers(1, 10))
def test_orthonormalize_output_invariants(seed, m_extra, k):
    rng = np.random.default_rng(seed)
    m = k + m_extra  # ensure m > k is possible but not required
    V = rng.standard_normal((m, k))
    Q, kept = orthonormalize(V)
    assert orthonormality_error(Q) < 1e-9
    assert Q.shape[1] == len(kept) <= k
    # span preservation: every kept column reconstructs exactly
    for j in kept:
        reconstructed = Q @ (Q.T @ V[:, j])
        assert np.allclose(reconstructed, V[:, j], atol=1e-7)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 20), st.integers(1, 20))
def test_svd_reconstruction_and_orthogonality(seed, m, n):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((m, n))
    U, s, V = cross_product_svd(X)
    assert np.allclose((U * s) @ V.T, X, atol=1e-7)
    r = len(s)
    assert np.allclose(U.T @ U, np.eye(r), atol=1e-7)
    assert np.allclose(V.T @ V, np.eye(r), atol=1e-7)
    assert np.all(np.diff(s) <= 1e-10)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(2, 12), st.integers(1, 6))
def test_svd_detects_planted_rank(seed, size, rank):
    rng = np.random.default_rng(seed)
    r = min(rank, size)
    X = rng.standard_normal((size + 3, r)) @ rng.standard_normal((r, size))
    _, s, _ = cross_product_svd(X)
    assert len(s) <= r
    # generic random factors have full rank r almost surely
    assert len(s) == r
