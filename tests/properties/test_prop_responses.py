"""Property-based tests for response generation (Eqn 15/16 invariants)."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.graph import lda_weight_matrix
from repro.core.responses import generate_responses, response_table


def label_vectors(max_classes=6, max_samples=40):
    """Random label vectors guaranteed to cover every class."""

    @st.composite
    def build(draw):
        c = draw(st.integers(2, max_classes))
        extra = draw(st.integers(0, max_samples - c))
        rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
        y = np.concatenate([np.arange(c), rng.integers(0, c, extra)])
        rng.shuffle(y)
        return y, c

    return build()


@settings(max_examples=60, deadline=None)
@given(label_vectors())
def test_shape_is_c_minus_one(case):
    y, c = case
    assert generate_responses(y, c).shape == (len(y), c - 1)


@settings(max_examples=60, deadline=None)
@given(label_vectors())
def test_orthogonal_to_ones(case):
    y, c = case
    R = generate_responses(y, c)
    assert np.abs(R.sum(axis=0)).max() < 1e-8


@settings(max_examples=60, deadline=None)
@given(label_vectors())
def test_orthonormal_columns(case):
    y, c = case
    R = generate_responses(y, c)
    assert np.allclose(R.T @ R, np.eye(c - 1), atol=1e-8)


@settings(max_examples=60, deadline=None)
@given(label_vectors())
def test_eigenvectors_of_w(case):
    y, c = case
    R = generate_responses(y, c)
    W = lda_weight_matrix(y, c)
    assert np.allclose(W @ R, R, atol=1e-8)


@settings(max_examples=60, deadline=None)
@given(label_vectors())
def test_piecewise_constant(case):
    y, c = case
    R = generate_responses(y, c)
    response_table(R, y, c)  # raises when not piecewise constant


@settings(max_examples=60, deadline=None)
@given(label_vectors())
def test_distinct_classes_get_distinct_response_rows(case):
    """Classes must be separable in response space: the (c, c-1) table
    rows form a non-degenerate simplex."""
    y, c = case
    R = generate_responses(y, c)
    table = response_table(R, y, c)
    # pairwise distinct rows
    for i in range(c):
        for j in range(i + 1, c):
            assert np.linalg.norm(table[i] - table[j]) > 1e-8


@settings(max_examples=60, deadline=None)
@given(label_vectors(), st.integers(0, 2**31 - 1))
def test_permutation_equivariance(case, seed):
    y, c = case
    perm = np.random.default_rng(seed).permutation(len(y))
    R = generate_responses(y, c)
    R_perm = generate_responses(y[perm], c)
    assert np.allclose(R_perm, R[perm], atol=1e-8)
