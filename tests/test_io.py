"""Unit tests for model serialization."""

import numpy as np
import pytest

from repro import IDRQR, LDA, RLDA, SRDA
from repro.core.sparse_srda import SparseSRDA
from repro.io import load_model, save_model


@pytest.fixture
def fitted_models(small_classification):
    X, y = small_classification
    return X, y, {
        "SRDA": SRDA(alpha=0.5, max_iter=25).fit(X, y),
        "SparseSRDA": SparseSRDA(alpha=0.5, l1_ratio=0.8).fit(X, y),
        "LDA": LDA().fit(X, y),
        "RLDA": RLDA(alpha=2.0).fit(X, y),
        "IDRQR": IDRQR(alpha=0.7).fit(X, y),
    }


class TestRoundTrip:
    def test_all_types_round_trip(self, fitted_models, tmp_path):
        X, y, models = fitted_models
        for name, model in models.items():
            path = save_model(model, tmp_path / name)
            loaded = load_model(path)
            assert type(loaded) is type(model)
            assert np.allclose(loaded.transform(X), model.transform(X))
            assert np.array_equal(loaded.predict(X), model.predict(X))

    def test_parameters_restored(self, fitted_models, tmp_path):
        X, y, models = fitted_models
        path = save_model(models["SRDA"], tmp_path / "m")
        loaded = load_model(path)
        assert loaded.alpha == 0.5
        assert loaded.max_iter == 25
        path = save_model(models["RLDA"], tmp_path / "r")
        assert load_model(path).alpha == 2.0

    def test_npz_suffix_appended(self, fitted_models, tmp_path):
        _, _, models = fitted_models
        path = save_model(models["LDA"], tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_loaded_model_scores_identically(self, fitted_models, tmp_path):
        X, y, models = fitted_models
        model = models["SRDA"]
        loaded = load_model(save_model(model, tmp_path / "s"))
        assert loaded.score(X, y) == model.score(X, y)


class TestValidation:
    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_model(SRDA(), tmp_path / "x")

    def test_unsupported_type_rejected(self, tmp_path, small_classification):
        from repro.baselines.pca import PCA

        X, _ = small_classification
        with pytest.raises(TypeError):
            save_model(PCA().fit(X), tmp_path / "x")

    def test_corrupt_type_tag_rejected(self, tmp_path, fitted_models):
        X, y, models = fitted_models
        path = save_model(models["LDA"], tmp_path / "m")
        data = dict(np.load(path, allow_pickle=False))
        data["model_type"] = np.array("Mystery")
        np.savez(path, **data)
        with pytest.raises(ValueError, match="unknown model type"):
            load_model(path)
