"""End-to-end raw-text pipeline: tokenize → vectorize → SRDA → persist.

Run with::

    python examples/raw_text_pipeline.py

Replays the paper's 20Newsgroups preprocessing on synthetic raw
documents — stop-word removal, suffix stripping, term-frequency
vectors normalized to 1 — then trains SRDA on the sparse matrix,
prints a per-class report, inspects which terms a sparse variant
selects, and round-trips the model through the .npz serializer.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SRDA, SparseSRDA
from repro.datasets.vectorizer import TfVectorizer, make_raw_documents
from repro.eval.metrics import classification_report, error_rate
from repro.io import load_model, save_model


def main() -> None:
    # synthetic raw documents with topical vocabulary + stop-word noise
    documents, labels = make_raw_documents(
        n_docs=600, n_classes=4, words_per_doc=80, seed=23
    )
    print("raw document sample:")
    print(" ", documents[0][:100], "...")

    split = 400
    vectorizer = TfVectorizer(min_df=2, max_df_ratio=0.6)
    X_train = vectorizer.fit_transform(documents[:split])
    X_test = vectorizer.transform(documents[split:])
    y_train, y_test = labels[:split], labels[split:]
    print(f"\nvocabulary: {vectorizer.n_features} terms after stop-word "
          f"removal and suffix stripping")
    print(f"train matrix: {X_train.shape}, "
          f"{X_train.mean_nnz_per_row():.1f} distinct terms/doc")

    # the paper's sparse path: SRDA + LSQR
    model = SRDA(alpha=1.0, solver="lsqr", max_iter=15, tol=0.0)
    model.fit(X_train, y_train)
    predictions = model.predict(X_test)
    print(f"\ntest error: {100 * error_rate(y_test, predictions):.1f}%")
    print(classification_report(
        y_test, predictions, 4,
        class_names=[f"topic-{k}" for k in range(4)],
    ))

    # the sparse variant tells you *which terms* discriminate
    sparse_model = SparseSRDA(alpha=0.002, l1_ratio=1.0, max_iter=300,
                              tol=1e-5).fit(X_train, y_train)
    index_to_term = {v: k for k, v in vectorizer.vocabulary_.items()}
    selected = sparse_model.selected_features()
    print(f"\nsparse SRDA keeps {selected.size} of "
          f"{vectorizer.n_features} terms "
          f"(sparsity {sparse_model.sparsity_:.2f}); a few of them:")
    print(" ", ", ".join(index_to_term[i] for i in selected[:10]))

    # persist and restore
    with tempfile.TemporaryDirectory() as tmp:
        path = save_model(model, Path(tmp) / "srda_text")
        restored = load_model(path)
        agreement = np.mean(restored.predict(X_test) == predictions)
        print(f"\nsaved to {path.name}; "
              f"restored model agreement: {agreement:.3f}")


if __name__ == "__main__":
    main()
