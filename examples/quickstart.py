"""Quickstart — train SRDA, embed, classify.

Run with::

    python examples/quickstart.py

Fits SRDA on a small synthetic face-recognition problem, compares both
solvers, and contrasts it with classic LDA — the 60-second tour of the
public API.
"""

import numpy as np

from repro import LDA, SRDA
from repro.datasets import make_faces, per_class_split


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. data: 12 subjects, 40 images each, 32x32 pixels
    dataset = make_faces(n_subjects=12, images_per_subject=40, seed=7)
    print(f"dataset: {dataset.n_samples} images, {dataset.n_features} pixels, "
          f"{dataset.n_classes} subjects")

    # 2. the paper's split protocol: l images per subject for training
    train_idx, test_idx = per_class_split(dataset.y, n_per_class=10, rng=rng)
    X_train, y_train = dataset.subset(train_idx)
    X_test, y_test = dataset.subset(test_idx)

    # 3. fit SRDA (alpha = 1.0, the paper's setting for every table)
    model = SRDA(alpha=1.0)
    model.fit(X_train, y_train)
    print(f"solver used: {model.solver_used_} "
          f"(centered={model.centered_})")

    # 4. embed into the (c-1)-dimensional discriminant subspace
    Z = model.transform(X_test)
    print(f"embedding shape: {Z.shape}  (c - 1 = {dataset.n_classes - 1})")

    # 5. classify by nearest class centroid in the embedding
    accuracy = model.score(X_test, y_test)
    print(f"SRDA test accuracy: {accuracy:.3f}")

    # 6. the two solvers are interchangeable
    iterative = SRDA(alpha=1.0, solver="lsqr", max_iter=20).fit(X_train, y_train)
    agreement = np.mean(model.predict(X_test) == iterative.predict(X_test))
    print(f"normal-equations vs LSQR prediction agreement: {agreement:.3f}")

    # 7. compare with classic LDA (the expensive baseline SRDA replaces)
    lda_accuracy = LDA().fit(X_train, y_train).score(X_test, y_test)
    print(f"LDA test accuracy:  {lda_accuracy:.3f}")


if __name__ == "__main__":
    main()
