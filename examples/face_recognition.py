"""Face recognition — the small-sample regime where regularization wins.

Run with::

    python examples/face_recognition.py

Reproduces the qualitative story of the paper's Table III on a reduced
PIE-like problem: with few training images per subject, plain LDA
overfits while RLDA and SRDA stay accurate, and SRDA trains in a
fraction of the time.  Finishes with the Figure-5 experiment — SRDA's
insensitivity to the choice of α.
"""

import time

import numpy as np

from repro import IDRQR, LDA, RLDA, SRDA
from repro.datasets import make_faces, per_class_split
from repro.eval.metrics import error_rate


def evaluate(model, dataset, n_per_class, rng):
    """Fit on a fresh split; return (error, fit seconds)."""
    train_idx, test_idx = per_class_split(dataset.y, n_per_class, rng)
    X_train, y_train = dataset.subset(train_idx)
    X_test, y_test = dataset.subset(test_idx)
    start = time.perf_counter()
    model.fit(X_train, y_train)
    seconds = time.perf_counter() - start
    return error_rate(y_test, model.predict(X_test)), seconds


def main() -> None:
    dataset = make_faces(n_subjects=30, images_per_subject=60, seed=11)
    print(f"{dataset.n_classes} subjects, "
          f"{dataset.n_samples} images of {dataset.n_features} pixels\n")

    algorithms = {
        "LDA": lambda: LDA(),
        "RLDA": lambda: RLDA(alpha=1.0),
        "SRDA": lambda: SRDA(alpha=1.0),
        "IDR/QR": lambda: IDRQR(alpha=1.0),
    }

    print(f"{'train/class':>12} " + " ".join(f"{n:>16}" for n in algorithms))
    for n_per_class in (5, 10, 20, 40):
        cells = []
        for factory in algorithms.values():
            rng = np.random.default_rng(5)  # same split for everyone
            error, seconds = evaluate(
                factory(), dataset, n_per_class, rng
            )
            cells.append(f"{100 * error:5.1f}% {seconds:6.2f}s")
        print(f"{n_per_class:>12} " + " ".join(f"{c:>16}" for c in cells))

    # Figure 5 in miniature: SRDA's error is flat over a wide alpha range
    print("\nSRDA error vs alpha (10 train/class):")
    rng = np.random.default_rng(5)
    train_idx, test_idx = per_class_split(dataset.y, 10, rng)
    X_train, y_train = dataset.subset(train_idx)
    X_test, y_test = dataset.subset(test_idx)
    for ratio in (0.1, 0.3, 0.5, 0.7, 0.9):
        alpha = ratio / (1.0 - ratio)
        model = SRDA(alpha=alpha).fit(X_train, y_train)
        error = error_rate(y_test, model.predict(X_test))
        print(f"  alpha/(1+alpha) = {ratio:.1f}  ->  error {100 * error:5.1f}%")


if __name__ == "__main__":
    main()
