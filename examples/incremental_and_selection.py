"""Incremental updates and model selection.

Run with::

    python examples/incremental_and_selection.py

Two production concerns the core paper leaves to its companion work:

1. **Warm-started refits** — when documents arrive in batches, SRDA's
   LSQR path restarts from the previous projection vectors and converges
   in a handful of iterations (the workload IDR/QR's "incremental" is
   aimed at).
2. **Choosing α** — Figure 5 shows how much α matters varies by
   dataset (nearly flat on faces, rising on text);
   :func:`grid_search_alpha` measures the curve on your data and picks
   the minimizer.
3. **Semi-supervised SRDA** — with a handful of labels, the blended
   graph exploits unlabeled structure.
"""

import numpy as np

from repro import SRDA, SemiSupervisedSRDA
from repro.datasets import make_text, ratio_split
from repro.eval import grid_search_alpha
from repro.eval.metrics import error_rate


def main() -> None:
    rng = np.random.default_rng(17)

    # ------------------------------------------------------------------
    # 1. warm-started incremental refits
    # ------------------------------------------------------------------
    corpus = make_text(n_docs=4000, vocab_size=26214, seed=17)
    batches = [3000, 3300, 3600, 4000]

    model = SRDA(alpha=1.0, solver="lsqr", max_iter=200, tol=1e-6,
                 warm_start=True)
    print("incremental corpus growth (LSQR iterations per refit):")
    for size in batches:
        X, y = corpus.subset(np.arange(size))
        model.fit(X, y)
        print(f"  {size:>5} docs: {sum(model.lsqr_iterations_):>4} "
              "total iterations")
    cold = SRDA(alpha=1.0, solver="lsqr", max_iter=200, tol=1e-6)
    cold.fit(*corpus.subset(np.arange(batches[-1])))
    print(f"  cold refit at {batches[-1]} docs: "
          f"{sum(cold.lsqr_iterations_):>4} total iterations")

    # ------------------------------------------------------------------
    # 2. alpha selection (and the Figure-5 flatness check)
    # ------------------------------------------------------------------
    train_idx, test_idx = ratio_split(corpus.y, 0.3, rng)
    X_train, y_train = corpus.subset(train_idx)
    X_test, y_test = corpus.subset(test_idx)
    result = grid_search_alpha(
        lambda a: SRDA(alpha=a, solver="lsqr", max_iter=15, tol=0.0),
        X_train, y_train, n_splits=3, seed=17,
    )
    print("\nalpha grid search (validation error per alpha):")
    for alpha, err in zip(result.alphas, result.mean_errors):
        print(f"  alpha = {alpha:8.3f}: {100 * err:5.1f}%")
    print(f"best alpha {result.best_alpha:.3f}; "
          f"flatness (max - min) {100 * result.flatness():.1f} points")
    best = SRDA(alpha=result.best_alpha, solver="lsqr", max_iter=15,
                tol=0.0).fit(X_train, y_train)
    print(f"test error at best alpha: "
          f"{100 * error_rate(y_test, best.predict(X_test)):.1f}%")

    # ------------------------------------------------------------------
    # 3. semi-supervised SRDA with 3 labels per class
    # ------------------------------------------------------------------
    rng2 = np.random.default_rng(18)
    centers = 5.0 * rng2.standard_normal((4, 15))
    y_full = np.repeat(np.arange(4), 40)
    X_full = centers[y_full] + 2.8 * rng2.standard_normal((160, 15))
    partial = np.full(160, -1, dtype=np.int64)
    for k in range(4):
        members = np.flatnonzero(y_full == k)
        partial[rng2.permutation(members)[:2]] = k

    labeled = partial != -1
    semi = SemiSupervisedSRDA(alpha=1.0, n_neighbors=7).fit(X_full, partial)
    tiny = SRDA(alpha=1.0).fit(X_full[labeled], y_full[labeled])
    print("\nsemi-supervised SRDA (2 labels/class, 152 unlabeled):")
    print(f"  supervised-only accuracy:  {tiny.score(X_full, y_full):.3f}")
    print(f"  semi-supervised accuracy:  {semi.score(X_full, y_full):.3f}")


if __name__ == "__main__":
    main()
