"""Scaling study — measure the linear-time claim on your own machine.

Run with::

    python examples/scaling_study.py

Times SRDA-LSQR against growing corpora and classic LDA against growing
square problems, fits log-log slopes, and prints them next to the
Table-I model's predictions.
"""

import time

import numpy as np

from repro import LDA, SRDA
from repro.complexity import (
    lda_flam,
    loglog_slope,
    srda_lsqr_flam,
)
from repro.datasets import make_text


def main() -> None:
    # ------------------------------------------------------------------
    # SRDA-LSQR vs corpus size
    # ------------------------------------------------------------------
    base = make_text(n_docs=12000, vocab_size=26214, seed=9)
    sizes = [1500, 3000, 6000, 12000]
    times = []
    print("SRDA (LSQR, 15 iters) on sparse text:")
    for m in sizes:
        X, y = base.subset(np.arange(m))
        model = SRDA(alpha=1.0, solver="lsqr", max_iter=15, tol=0.0)
        start = time.perf_counter()
        model.fit(X, y)
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        print(f"  m = {m:>6}: {elapsed:6.2f} s")
    slope = loglog_slope(sizes, times)
    model_slope = loglog_slope(
        sizes, [srda_lsqr_flam(m, 26214, 20, k=15, s=90) for m in sizes]
    )
    print(f"  measured slope {slope:.2f} vs model {model_slope:.2f} "
          "(1.0 = linear)")

    # ------------------------------------------------------------------
    # LDA vs problem size (square, dense)
    # ------------------------------------------------------------------
    rng = np.random.default_rng(10)
    sizes = [512, 1024, 2048]
    times = []
    print("\nclassic LDA on dense square problems:")
    # warm up BLAS/allocator so the first measurement isn't inflated
    warm_y = np.arange(128) % 10
    LDA().fit(rng.standard_normal((128, 128)), warm_y)
    for t in sizes:
        y = np.arange(t) % 10
        X = rng.standard_normal((t, t)) + rng.standard_normal((10, t))[y]
        start = time.perf_counter()
        LDA().fit(X, y)
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        print(f"  t = {t:>5}: {elapsed:6.2f} s")
    slope = loglog_slope(sizes, times)
    model_slope = loglog_slope(sizes, [lda_flam(t, t, 10) for t in sizes])
    print(f"  measured slope {slope:.2f} vs model {model_slope:.2f} "
          "(cubic term pushes this toward 3)")


if __name__ == "__main__":
    main()
