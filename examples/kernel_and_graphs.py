"""Beyond linear SRDA — the kernel extension and generalized graphs.

Run with::

    python examples/kernel_and_graphs.py

Two extensions the paper points to (Section III and refs [12]-[16]):

1. **Kernel SRDA** — spectral-regression KDA.  On concentric rings no
   linear discriminant can help; an RBF kernel separates them while the
   regression machinery stays identical.
2. **Generalized graphs** — SRDA's responses are eigenvectors of the LDA
   graph matrix; swapping in a k-NN affinity turns the same pipeline
   into unsupervised spectral embedding, and blending both gives the
   semi-supervised variant.
"""

import numpy as np

from repro import SRDA, KernelSRDA
from repro.core.graph import (
    graph_responses,
    knn_affinity,
    lda_weight_matrix,
    semi_supervised_affinity,
)


def make_rings(rng, n=200):
    """Two concentric rings — linearly inseparable."""
    angles = rng.uniform(0.0, 2.0 * np.pi, n)
    radii = np.where(np.arange(n) % 2 == 0, 1.0, 3.0)
    radii = radii + 0.15 * rng.standard_normal(n)
    X = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
    return X, (np.arange(n) % 2).astype(int)


def main() -> None:
    rng = np.random.default_rng(21)

    # ------------------------------------------------------------------
    # 1. kernel SRDA on the rings
    # ------------------------------------------------------------------
    X, y = make_rings(rng)
    X_test, y_test = make_rings(rng)

    linear = SRDA(alpha=0.01).fit(X, y)
    kernel = KernelSRDA(alpha=0.01, kernel="rbf", gamma=1.0).fit(X, y)
    print("concentric rings:")
    print(f"  linear SRDA accuracy: {linear.score(X_test, y_test):.3f} "
          "(chance = 0.5)")
    print(f"  kernel SRDA accuracy: {kernel.score(X_test, y_test):.3f}")

    # ------------------------------------------------------------------
    # 2. the graph view: LDA responses are one choice of graph
    # ------------------------------------------------------------------
    rng = np.random.default_rng(22)
    centers = 4.0 * rng.standard_normal((3, 10))
    labels = np.repeat(np.arange(3), 30)
    X = centers[labels] + rng.standard_normal((90, 10))

    # supervised graph: block matrix of 1/m_k (Eqn 6)
    W_lda = lda_weight_matrix(labels, 3)
    responses = graph_responses(W_lda, n_components=2)
    # responses are piecewise constant per class — check spread
    spread = max(
        np.abs(responses[labels == k] - responses[labels == k][0]).max()
        for k in range(3)
    )
    print("\ngraph view:")
    print(f"  LDA-graph responses piecewise constant per class "
          f"(max within-class spread {spread:.2e})")

    # unsupervised graph: k-NN affinity, no labels used
    W_knn = knn_affinity(X, n_neighbors=7, mode="heat")
    embedding = graph_responses(W_knn, n_components=2)
    # do unsupervised responses still separate the classes?
    centroids = np.vstack([embedding[labels == k].mean(0) for k in range(3)])
    within = np.mean([embedding[labels == k].std() for k in range(3)])
    between = np.linalg.norm(
        centroids[:, None] - centroids[None, :], axis=-1
    ).max()
    print(f"  k-NN-graph embedding: between/within class spread "
          f"{between / within:.1f}x (unsupervised)")

    # semi-supervised: 20% labels + k-NN structure
    partial = labels.copy()
    mask = rng.random(90) > 0.2
    partial[mask] = -1
    W_semi = semi_supervised_affinity(X, partial, 3, n_neighbors=7)
    semi_embedding = graph_responses(W_semi, n_components=2)
    centroids = np.vstack(
        [semi_embedding[labels == k].mean(0) for k in range(3)]
    )
    within = np.mean([semi_embedding[labels == k].std() for k in range(3)])
    between = np.linalg.norm(
        centroids[:, None] - centroids[None, :], axis=-1
    ).max()
    print(f"  semi-supervised graph ({(~mask).sum()} labels): "
          f"between/within {between / within:.1f}x")


if __name__ == "__main__":
    main()
