"""Sparse text classification — the paper's headline use case.

Run with::

    python examples/text_classification.py

Builds a 20Newsgroups-like sparse corpus (never densified), trains SRDA
through the LSQR path with the paper's settings (α = 1, 15 iterations),
and shows why the dense alternatives cannot scale: the predicted memory
of classic LDA on the same data versus what SRDA actually touches.
"""

import time

import numpy as np

from repro import SRDA
from repro.complexity import lda_memory, srda_lsqr_memory
from repro.datasets import make_text, ratio_split
from repro.eval.metrics import error_rate


def main() -> None:
    rng = np.random.default_rng(3)

    # a mid-size corpus: 6,000 documents over the full 26,214-term vocabulary
    dataset = make_text(n_docs=6000, vocab_size=26214, seed=3)
    X, y = dataset.X, dataset.y
    s = X.mean_nnz_per_row()
    print(f"corpus: {X.shape[0]} docs x {X.shape[1]} terms, "
          f"avg {s:.0f} distinct terms/doc "
          f"(density {X.nnz / (X.shape[0] * X.shape[1]):.4%})")

    # the paper's protocol: a stratified fraction of each class trains
    train_idx, test_idx = ratio_split(y, train_ratio=0.3, rng=rng)
    X_train, y_train = dataset.subset(train_idx)
    X_test, y_test = dataset.subset(test_idx)

    # SRDA with LSQR — the linear-time path; 15 iterations as in Table X
    model = SRDA(alpha=1.0, solver="lsqr", max_iter=15, tol=0.0)
    start = time.perf_counter()
    model.fit(X_train, y_train)
    fit_seconds = time.perf_counter() - start

    error = error_rate(y_test, model.predict(X_test))
    print(f"SRDA (LSQR, 15 iters): error {100 * error:.1f}%, "
          f"fit {fit_seconds:.2f}s")
    print(f"LSQR iterations per response: {model.lsqr_iterations_[:5]}...")

    # why the dense baselines cannot follow (Table I memory model):
    m, n, c = X_train.shape[0], X_train.shape[1], dataset.n_classes
    lda_gb = lda_memory(m, n, c) * 8 / 1e9
    srda_mb = srda_lsqr_memory(m, n, c, s=s) * 8 / 1e6
    print(f"predicted LDA working set:  {lda_gb:.2f} GB "
          "(dense SVD factors of the centered matrix)")
    print(f"predicted SRDA working set: {srda_mb:.1f} MB "
          "(the sparse matrix plus a few vectors)")

    # scaling: double the training documents, time roughly doubles
    bigger = make_text(n_docs=12000, vocab_size=26214, seed=4)
    train_idx, _ = ratio_split(bigger.y, train_ratio=0.3, rng=rng)
    Xb, yb = bigger.subset(train_idx)
    start = time.perf_counter()
    SRDA(alpha=1.0, solver="lsqr", max_iter=15, tol=0.0).fit(Xb, yb)
    doubled = time.perf_counter() - start
    print(f"2x documents -> fit time {fit_seconds:.2f}s -> {doubled:.2f}s "
          f"({doubled / fit_seconds:.1f}x; linear time predicts ~2x)")


if __name__ == "__main__":
    main()
