"""Build hook for the optional compiled CSR kernels.

The package is pure python by default; this extension is the
``compiled`` backend of :mod:`repro.linalg.kernels`.  It is marked
``optional`` so a missing compiler degrades to the pure-numpy
reference backend instead of failing the install.

Build in place for development:

    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup

try:
    import numpy
except ImportError:  # pragma: no cover - numpy is a hard runtime dep
    numpy = None

ext_modules = []
if numpy is not None:
    csr_kernels = Extension(
        "repro.linalg._csr_kernels",
        sources=["src/repro/linalg/_csr_kernels.c"],
        include_dirs=[numpy.get_include()],
        # -O3 but NOT -ffast-math: the bitwise contract with the numpy
        # reference forbids reassociation of the accumulation order.
        extra_compile_args=["-O3"],
        optional=True,
    )
    ext_modules.append(csr_kernels)

setup(ext_modules=ext_modules)
