"""Table II — dataset statistics.

Regenerates the statistics table for the four (synthetic stand-in)
datasets at the current benchmark scale and checks the structural
contract each generator must satisfy.
"""

from benchmarks._harness import once
from benchmarks.conftest import SCALE, record_report


def test_table2_statistics(
    benchmark, pie_dataset, isolet_dataset, mnist_dataset, news_dataset
):
    datasets = [pie_dataset, isolet_dataset, mnist_dataset, news_dataset]

    def render():
        lines = [
            f"Table II — dataset statistics (scale={SCALE})",
            f"{'dataset':10} {'size (m)':>10} {'dim (n)':>10} "
            f"{'# classes (c)':>14} {'avg nnz (s)':>12}",
            "-" * 60,
        ]
        for dataset in datasets:
            stats = dataset.statistics()
            nnz = stats.get("avg_nnz_per_sample_s", "dense")
            lines.append(
                f"{stats['name']:10} {stats['size_m']:>10} "
                f"{stats['dim_n']:>10} {stats['classes_c']:>14} {nnz!s:>12}"
            )
        return "\n".join(lines)

    text = once(benchmark, render)
    record_report("table2_datasets", text)

    pie, isolet, mnist, news = datasets
    # feature and class counts always match Table II
    assert pie.n_features == 1024 and pie.n_classes in (20, 68)
    assert isolet.n_features == 617 and isolet.n_classes == 26
    assert mnist.n_features == 784 and mnist.n_classes == 10
    assert news.n_features == 26214 and news.n_classes == 20
    # the text corpus is the one sparse dataset, with text-like density
    assert news.is_sparse
    assert 20 < news.X.mean_nnz_per_row() < 300
    for dataset in (pie, isolet, mnist):
        assert not dataset.is_sparse

    if SCALE == "paper":
        assert pie.n_samples == 11560
        assert mnist.n_samples == 4000
        assert news.n_samples == 18941
