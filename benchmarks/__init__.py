"""Paper-reproduction benchmarks (one module per table/figure).

The package marker lets the modules import their shared helpers
(`benchmarks._harness`, `benchmarks.conftest`) under a bare ``pytest``
invocation, which does not add the working directory to ``sys.path``.
"""
