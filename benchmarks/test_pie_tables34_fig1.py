"""Tables III–IV and Figure 1 — the PIE face-recognition experiment.

Protocol: for l ∈ {10, …, 60} training images per subject, fit
LDA / RLDA / SRDA / IDR-QR on a random per-class split and classify the
held-out images; average over splits.  Expected shape (paper):
RLDA ≈ SRDA < LDA < IDR-QR in error at small l, and SRDA in the same
time league as IDR/QR, several-fold under LDA/RLDA.
"""

from benchmarks._harness import (
    assert_dense_paper_shape,
    once,
    paper_algorithms,
    run_and_render,
)
from benchmarks.conftest import N_SPLITS, SCALE, record_report

TRAIN_SIZES = [10, 20, 30, 40, 50, 60]


def test_pie_error_and_time(benchmark, pie_dataset):
    def run():
        return run_and_render(
            pie_dataset,
            paper_algorithms(),
            TRAIN_SIZES,
            N_SPLITS,
            seed=31,
            error_title=(
                f"Table III — error rates (%) on PIE-like faces "
                f"(scale={SCALE}, {N_SPLITS} splits)"
            ),
            time_title="Table IV — training time (s) on PIE-like faces",
            figure_title="Figure 1 (PIE)",
            record=lambda text: record_report("pie_tables34_fig1", text),
        )

    result = once(benchmark, run)
    assert_dense_paper_shape(result)

    # PIE-specific: the speed gap must be substantial at the largest
    # size (paper: 8.6 s LDA vs 1.6 s SRDA ≈ 5×; our BLAS-built LDA is
    # leaner than 2008 MATLAB, so ask for ≥ 1.5×)
    largest = result.size_labels[-1]
    lda_time = result.cell("LDA", largest).mean_time
    srda_time = result.cell("SRDA", largest).mean_time
    assert lda_time > 1.5 * srda_time, (lda_time, srda_time)
