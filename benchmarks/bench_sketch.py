"""Sketch-and-precondition benchmark — emits ``BENCH_sketch.json``.

Measures what ``repro.linalg.sketch`` claims and asserts it:

1. **Iteration cut**: on ill-conditioned grids (geometric column
   scaling, cond ≈ 1e2), preconditioned :func:`block_lsqr` must
   converge in at most **half** the iterations of the plain run, at
   the same tolerance, for every sketch family.  Asserted per grid.
2. **Parity**: the sketched solution must match the plain LSQR
   solution to ``max_rel_diff <= 1e-6`` — iteration savings are only
   real if the answer is the same.  Asserted per grid and family.
3. **Determinism**: rebuilding the preconditioner with the same seed
   and re-solving must be *bitwise identical*.  Asserted.
4. **SRDA composition**: ``SRDA(solver="sketched_lsqr")`` with a
   sharded ``n_jobs=2`` thread backend must be bitwise identical to
   the serial fit, and must use fewer LSQR iterations than
   ``solver="lsqr"`` on the same data.  Asserted.

The conditioning matters: past cond ~1e3, *plain* LSQR stalls short of
the 1e-6 parity bar at float64, so the grids here stay at cond 1e2
where both solvers reach the same answer and only the iteration counts
differ.  Run from the repo root::

    PYTHONPATH=src:. python benchmarks/bench_sketch.py            # full
    PYTHONPATH=src:. python benchmarks/bench_sketch.py --smoke    # CI

The JSON schema is documented in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.core.srda import SRDA
from repro.linalg.block_lsqr import block_lsqr
from repro.linalg.sketch import SKETCH_KINDS, build_preconditioner
from repro.linalg.sparse import CSRMatrix

try:
    from benchmarks._provenance import provenance
except ImportError:  # run as `python benchmarks/bench_sketch.py`
    from _provenance import provenance

#: Ill-conditioned grids (name, kwargs).  Column scales span
#: ``logspace(0, 2, n)`` — condition number ~1e2 before damping.
FULL_GRIDS = [
    {"name": "dense_4096x256", "m": 4096, "n": 256, "sparse": False},
    {"name": "dense_3000x120", "m": 3000, "n": 120, "sparse": False},
    {"name": "sparse_6000x300", "m": 6000, "n": 300, "sparse": True,
     "row_nnz": 40},
]
SMOKE_GRIDS = [
    {"name": "dense_800x64", "m": 800, "n": 64, "sparse": False},
    {"name": "sparse_1200x80", "m": 1200, "n": 80, "sparse": True,
     "row_nnz": 20},
]

#: Generous cap so the *plain* baseline converges by tolerance, not by
#: hitting the limit (Krylov exactness does not hold in floating point).
ITER_LIM = 6000
TOL = 1e-10
N_RHS = 4


def column_scales(n):
    return np.logspace(0, 2, n)


def make_dense(m, n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, n)) / column_scales(n)


def make_sparse(m, n, row_nnz, seed=0):
    rng = np.random.default_rng(seed)
    scales = column_scales(n)
    indices = np.empty(m * row_nnz, dtype=np.int64)
    for i in range(m):
        indices[i * row_nnz : (i + 1) * row_nnz] = np.sort(
            rng.choice(n, size=row_nnz, replace=False)
        )
    data = rng.standard_normal(m * row_nnz) / scales[indices]
    indptr = np.arange(0, (m + 1) * row_nnz, row_nnz, dtype=np.int64)
    return CSRMatrix(data, indices, indptr, shape=(m, n))


def rel_diff(X, reference):
    scale = max(1.0, float(np.max(np.abs(reference))))
    return float(np.max(np.abs(X - reference)) / scale)


def frob_sq(A):
    if isinstance(A, CSRMatrix):
        return float(A.data @ A.data)
    return float(np.sum(np.asarray(A) ** 2))


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def run_grid(grid, seed=0):
    """Plain vs per-family sketched block LSQR on one problem."""
    m, n = grid["m"], grid["n"]
    if grid["sparse"]:
        A = make_sparse(m, n, grid["row_nnz"], seed=seed)
    else:
        A = make_dense(m, n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    B = rng.standard_normal((m, N_RHS))
    alpha = 1e-4 * frob_sq(A) / n
    damp = float(np.sqrt(alpha))

    plain_seconds, plain = timed(
        lambda: block_lsqr(A, B, damp=damp, atol=TOL, btol=TOL,
                           iter_lim=ITER_LIM)
    )
    plain_itn = int(np.max(plain.itn))
    assert plain_itn < ITER_LIM, (
        f"{grid['name']}: plain LSQR hit the iteration cap — raise "
        "ITER_LIM so the baseline converges by tolerance"
    )

    families = []
    for kind in SKETCH_KINDS:
        build_seconds, pre = timed(
            lambda: build_preconditioner(A, alpha=alpha, sketch=kind, seed=0)
        )
        solve_seconds, fast = timed(
            lambda: block_lsqr(A, B, damp=damp, atol=TOL, btol=TOL,
                               iter_lim=ITER_LIM, precondition=pre)
        )
        fast_itn = int(np.max(fast.itn))
        parity = rel_diff(fast.X, plain.X)
        ratio = plain_itn / max(1, fast_itn)
        assert parity <= 1e-6, (
            f"{grid['name']} {kind}: sketched solution drifted "
            f"{parity:.3e} from plain LSQR (parity bound 1e-6)"
        )
        assert ratio >= 2.0, (
            f"{grid['name']} {kind}: only cut iterations "
            f"{plain_itn} -> {fast_itn} ({ratio:.2f}x; need >= 2x)"
        )
        # Same seed, same bits: rebuild and re-solve.
        pre2 = build_preconditioner(A, alpha=alpha, sketch=kind, seed=0)
        again = block_lsqr(A, B, damp=damp, atol=TOL, btol=TOL,
                           iter_lim=ITER_LIM, precondition=pre2)
        deterministic = bool(np.array_equal(fast.X, again.X))
        assert deterministic, (
            f"{grid['name']} {kind}: same-seed re-solve was not "
            "bitwise identical"
        )
        families.append(
            {
                "kind": kind,
                "sketch_size": pre.sketch_size,
                "build_seconds": build_seconds,
                "solve_seconds": solve_seconds,
                "iterations": fast_itn,
                "iteration_ratio": ratio,
                "max_rel_diff_vs_plain": parity,
                "bitwise_deterministic": deterministic,
            }
        )

    return {
        **{k: grid[k] for k in ("name", "m", "n", "sparse")},
        "alpha": alpha,
        "tol": TOL,
        "n_rhs": N_RHS,
        "plain": {"seconds": plain_seconds, "iterations": plain_itn},
        "families": families,
    }


def run_srda_composition(smoke, seed=0):
    """Sketched SRDA through a sharded backend: bitwise + fewer iters."""
    m, n, row_nnz = (1200, 80, 20) if smoke else (6000, 300, 40)
    X = make_sparse(m, n, row_nnz, seed=seed)
    y = np.arange(m) % 4
    kwargs = dict(alpha=1.0, max_iter=2000, tol=1e-10)

    plain = SRDA(solver="lsqr", **kwargs).fit(X, y)
    # All sharded configurations share one layout (a pure function of
    # the data), so backend and worker count must not change a bit.
    # (The *unsharded* fit differs in the low bits of the rmatmat fold,
    # by the parallel layer's documented contract — that drift is
    # covered by the 1e-6 parity bound below, not the bitwise one.)
    serial = SRDA(
        solver="sketched_lsqr", backend="serial", **kwargs
    ).fit(X, y)
    bitwise = True
    for backend, jobs in (("thread", 2), ("thread", 4)):
        other = SRDA(
            solver="sketched_lsqr", backend=backend, n_jobs=jobs, **kwargs
        ).fit(X, y)
        bitwise = bitwise and bool(
            np.array_equal(serial.components_, other.components_)
            and np.array_equal(serial.intercept_, other.intercept_)
        )
        assert bitwise, (
            f"sketched SRDA on {backend} x{jobs} diverged from the "
            "sharded serial fit; composition must be bitwise "
            "deterministic"
        )
    threaded = other
    parity = rel_diff(serial.components_, plain.components_)
    assert parity <= 1e-6, (
        f"sketched SRDA drifted {parity:.3e} from solver='lsqr'"
    )
    plain_itn = max(plain.lsqr_iterations_)
    fast_itn = max(serial.lsqr_iterations_)
    return {
        "m": m,
        "n": n,
        "plain_iterations": plain_itn,
        "sketched_iterations": fast_itn,
        "iteration_ratio": plain_itn / max(1, fast_itn),
        "max_rel_diff_vs_lsqr": parity,
        "bitwise_identical_across_backends": bitwise,
        "solver_used": threaded.solver_used_,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI — validates the claims, not throughput",
    )
    parser.add_argument(
        "--out", default="BENCH_sketch.json", help="output JSON path"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="problem-generation seed"
    )
    args = parser.parse_args(argv)

    grids = SMOKE_GRIDS if args.smoke else FULL_GRIDS
    results = []
    for grid in grids:
        result = run_grid(grid, seed=args.seed)
        results.append(result)
        print(
            f"{result['name']}: plain {result['plain']['iterations']} iters "
            f"({result['plain']['seconds']:.3f}s)"
        )
        for family in result["families"]:
            print(
                f"  {family['kind']:>11}: {family['iterations']:4d} iters "
                f"({family['iteration_ratio']:5.1f}x cut, parity "
                f"{family['max_rel_diff_vs_plain']:.1e}, build "
                f"{family['build_seconds']:.3f}s)"
            )

    srda = run_srda_composition(args.smoke, seed=args.seed)
    print(
        f"SRDA sketched_lsqr + n_jobs=2: {srda['plain_iterations']} -> "
        f"{srda['sketched_iterations']} iters "
        f"({srda['iteration_ratio']:.1f}x), "
        f"bitwise={srda['bitwise_identical_across_backends']}"
    )

    payload = {
        "benchmark": "sketch",
        "mode": "smoke" if args.smoke else "full",
        # iteration-ratio and parity gates are core-count independent
        # and always asserted
        **provenance(gates_enforced=True),
        "min_iteration_ratio": 2.0,
        "parity_bound": 1e-6,
        "grids": results,
        "srda_composition": srda,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return payload


if __name__ == "__main__":
    main()
