"""Blocked-vs-sequential LSQR benchmark — emits ``BENCH_block_lsqr.json``.

Measures the three quantities the perf trajectory tracks from PR 2
onward:

1. **Wall time** of per-column :func:`repro.linalg.lsqr.lsqr` vs one
   :func:`repro.linalg.block_lsqr.block_lsqr` call over the same
   ``c - 1`` right-hand sides, at several ``(m, n, c, s)`` points.
2. **Flam** (multiply-add pairs charged at nnz per product column, via
   :class:`repro.complexity.FlamCountingOperator`) for both paths —
   identical by construction, which is what makes flam/second a fair
   throughput metric: the blocked path does the *same arithmetic*
   faster.
3. **Alpha-sweep reuse**: a grid of damping values solved by refitting
   per alpha vs one :class:`~repro.linalg.block_lsqr.SharedBidiagonalization`
   replayed per alpha, with operator-product counts proving the shared
   path touches the data once.

Run from the repo root::

    PYTHONPATH=src:. python benchmarks/bench_block_lsqr.py            # full
    PYTHONPATH=src:. python benchmarks/bench_block_lsqr.py --smoke    # CI

The JSON schema is documented in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.complexity.counter import FlamCountingOperator
from repro.linalg.block_lsqr import SharedBidiagonalization, block_lsqr
from repro.linalg.lsqr import lsqr
from repro.linalg.operators import as_operator
from repro.linalg.sparse import CSRMatrix

try:
    from benchmarks._provenance import provenance
except ImportError:  # run as `python benchmarks/bench_block_lsqr.py`
    from _provenance import provenance

#: (m, n, classes, nnz-per-row, dtype) points for the full run.  The
#: flagship case mirrors the paper's 20Newsgroups shape: tall sparse
#: text-like data with c = 20 classes.
FULL_CASES = [
    dict(m=20000, n=26000, classes=20, row_nnz=80, dtype="float64"),
    dict(m=8000, n=10000, classes=11, row_nnz=50, dtype="float64"),
    dict(m=8000, n=10000, classes=11, row_nnz=50, dtype="float32"),
    dict(m=8000, n=10000, classes=2, row_nnz=50, dtype="float64"),
]

SMOKE_CASES = [
    dict(m=400, n=300, classes=11, row_nnz=20, dtype="float64"),
    dict(m=400, n=300, classes=2, row_nnz=20, dtype="float64"),
]


def make_problem(m, n, row_nnz, dtype, seed=0):
    """Sparse data + responses-like RHS block with sorted row indices."""
    rng = np.random.default_rng(seed)
    indices = np.empty(m * row_nnz, dtype=np.int64)
    for i in range(m):
        indices[i * row_nnz : (i + 1) * row_nnz] = np.sort(
            rng.choice(n, size=row_nnz, replace=False)
        )
    data = rng.standard_normal(m * row_nnz).astype(dtype)
    indptr = np.arange(0, (m + 1) * row_nnz, row_nnz, dtype=np.int64)
    return CSRMatrix(data, indices, indptr, shape=(m, n))


def make_rhs(m, classes, dtype, seed=1):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, classes - 1)).astype(dtype)


def best_of(repeats, fn):
    """Best wall time over ``repeats`` runs, plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_case(case, iter_lim, damp, repeats):
    matrix = make_problem(
        case["m"], case["n"], case["row_nnz"], case["dtype"]
    )
    B = make_rhs(case["m"], case["classes"], case["dtype"])
    op = FlamCountingOperator(as_operator(matrix))
    k = B.shape[1]

    def sequential():
        return np.column_stack(
            [
                lsqr(op, B[:, j], damp=damp, atol=0.0, btol=0.0,
                     iter_lim=iter_lim).x
                for j in range(k)
            ]
        )

    def blocked():
        return block_lsqr(
            op, B, damp=damp, atol=0.0, btol=0.0, iter_lim=iter_lim
        ).X

    op.reset()
    seq_seconds, seq_x = best_of(repeats, sequential)
    seq_flam = op.flam / repeats

    op.reset()
    blk_seconds, blk_x = best_of(repeats, blocked)
    blk_flam = op.flam / repeats

    scale = max(1.0, float(np.max(np.abs(seq_x))))
    return {
        **case,
        "iter_lim": iter_lim,
        "damp": damp,
        "nnz": matrix.nnz,
        "sequential": {"seconds": seq_seconds, "flam": seq_flam},
        "blocked": {"seconds": blk_seconds, "flam": blk_flam},
        "speedup": seq_seconds / blk_seconds,
        "max_rel_diff": float(np.max(np.abs(seq_x - blk_x)) / scale),
    }


def run_alpha_sweep(case, iter_lim, alphas, repeats):
    """Per-alpha cold solves vs one shared bidiagonalization."""
    matrix = make_problem(
        case["m"], case["n"], case["row_nnz"], case["dtype"]
    )
    B = make_rhs(case["m"], case["classes"], case["dtype"])
    op = FlamCountingOperator(as_operator(matrix))
    damps = [float(np.sqrt(a)) for a in alphas]

    def per_alpha():
        return [
            block_lsqr(op, B, damp=d, atol=0.0, btol=0.0,
                       iter_lim=iter_lim).X
            for d in damps
        ]

    def shared():
        basis = SharedBidiagonalization(op, B, iter_lim=iter_lim)
        return [
            basis.solve(damp=d, atol=0.0, btol=0.0).X for d in damps
        ]

    op.reset()
    cold_seconds, cold_xs = best_of(repeats, per_alpha)
    cold_products = (op.n_matmat + op.n_rmatmat) / repeats

    op.reset()
    shared_seconds, shared_xs = best_of(repeats, shared)
    shared_products = (op.n_matmat + op.n_rmatmat) / repeats

    diff = max(
        float(np.max(np.abs(a - b))) for a, b in zip(cold_xs, shared_xs)
    )
    return {
        "m": case["m"],
        "n": case["n"],
        "classes": case["classes"],
        "row_nnz": case["row_nnz"],
        "iter_lim": iter_lim,
        "n_alphas": len(alphas),
        "per_alpha": {
            "seconds": cold_seconds,
            "operator_products": cold_products,
        },
        "shared_bidiagonalization": {
            "seconds": shared_seconds,
            "operator_products": shared_products,
        },
        "speedup": cold_seconds / shared_seconds,
        "max_abs_diff": diff,
    }


def run_observability_overhead(case, iter_lim, repeats):
    """Tracing overhead on the blocked path, disabled and enabled.

    The contract the observability layer ships under: with tracing
    *disabled* (the default for every fit), the instrumented call path
    — resolve the tracer, ask it for an iteration hook, pass the
    resulting ``None`` to the solver — must cost less than 2% over the
    bare solver call.  Asserted here so a regression fails the
    benchmark run, not just a code review.
    """
    from repro.observability import DISABLED_TRACER, InMemorySink, Tracer

    matrix = make_problem(
        case["m"], case["n"], case["row_nnz"], case["dtype"]
    )
    B = make_rhs(case["m"], case["classes"], case["dtype"])
    op = as_operator(matrix)

    def plain():
        return block_lsqr(
            op, B, damp=1.0, atol=0.0, btol=0.0, iter_lim=iter_lim
        ).X

    def disabled_trace():
        hook = DISABLED_TRACER.iteration_hook()  # None — the default path
        return block_lsqr(
            op, B, damp=1.0, atol=0.0, btol=0.0, iter_lim=iter_lim,
            on_iteration=hook,
        ).X

    def enabled_trace():
        tracer = Tracer(sink=InMemorySink())
        with tracer.span("bench.block_lsqr") as span:
            result = block_lsqr(
                op, B, damp=1.0, atol=0.0, btol=0.0, iter_lim=iter_lim,
                on_iteration=tracer.iteration_hook(span),
            ).X
        return result

    reps = max(repeats, 5)
    plain_seconds, _ = best_of(reps, plain)
    disabled_seconds, _ = best_of(reps, disabled_trace)
    enabled_seconds, _ = best_of(reps, enabled_trace)

    overhead = disabled_seconds / plain_seconds - 1.0
    # Small absolute slack keeps timer jitter on smoke-sized problems
    # from failing a structurally-zero-cost path.
    assert disabled_seconds <= plain_seconds * 1.02 + 1e-4, (
        f"disabled tracing added {overhead:.1%} to block_lsqr "
        f"({plain_seconds:.6f}s -> {disabled_seconds:.6f}s); "
        "the observability layer must be free when off"
    )
    return {
        "m": case["m"],
        "n": case["n"],
        "classes": case["classes"],
        "iter_lim": iter_lim,
        "repeats": reps,
        "plain_seconds": plain_seconds,
        "disabled_trace_seconds": disabled_seconds,
        "enabled_trace_seconds": enabled_seconds,
        "disabled_overhead": overhead,
        "enabled_overhead": enabled_seconds / plain_seconds - 1.0,
        "max_disabled_overhead": 0.02,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI — validates the harness, not throughput",
    )
    parser.add_argument(
        "--out", default="BENCH_block_lsqr.json", help="output JSON path"
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    cases = SMOKE_CASES if args.smoke else FULL_CASES
    iter_lim = 10 if args.smoke else 15
    repeats = args.repeats or (2 if args.smoke else 3)
    alphas = [0.01, 0.1, 0.5, 1.0, 2.0, 10.0, 100.0]

    results = []
    for case in cases:
        result = run_case(case, iter_lim=iter_lim, damp=1.0, repeats=repeats)
        results.append(result)
        print(
            f"m={case['m']} n={case['n']} c={case['classes']} "
            f"s={case['row_nnz']} {case['dtype']}: "
            f"seq {result['sequential']['seconds']:.3f}s "
            f"blk {result['blocked']['seconds']:.3f}s "
            f"speedup {result['speedup']:.2f}x "
            f"(max rel diff {result['max_rel_diff']:.2e})"
        )

    sweep = run_alpha_sweep(
        cases[0], iter_lim=iter_lim, alphas=alphas, repeats=repeats
    )
    print(
        f"alpha sweep x{sweep['n_alphas']}: "
        f"per-alpha {sweep['per_alpha']['seconds']:.3f}s "
        f"({sweep['per_alpha']['operator_products']:.0f} products) vs "
        f"shared {sweep['shared_bidiagonalization']['seconds']:.3f}s "
        f"({sweep['shared_bidiagonalization']['operator_products']:.0f} "
        f"products), speedup {sweep['speedup']:.2f}x"
    )

    observability = run_observability_overhead(
        cases[-1], iter_lim=iter_lim, repeats=repeats
    )
    print(
        f"observability overhead: disabled "
        f"{observability['disabled_overhead']:+.2%}, enabled "
        f"{observability['enabled_overhead']:+.2%} "
        f"(plain {observability['plain_seconds']:.4f}s)"
    )

    payload = {
        "benchmark": "block_lsqr",
        "mode": "smoke" if args.smoke else "full",
        # this artifact's gates (iteration parity, flam ratios,
        # observability overhead) are core-count independent and always
        # asserted
        **provenance(gates_enforced=True),
        "repeats": repeats,
        "cases": results,
        "alpha_sweep": sweep,
        "observability": observability,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return payload


if __name__ == "__main__":
    main()
