"""Shared provenance block for every ``BENCH_*.json`` artifact.

A recorded number is only interpretable next to the machine and kernel
configuration that produced it, and a *gate* (an asserted threshold, not
just a recorded column) is only meaningful if the artifact says whether
it actually ran.  Every bench script stamps its payload with
:func:`provenance`:

- ``cpu_count`` — what the runner had; a 1.0x thread speedup on a
  single-core runner is expected, not a regression.
- ``kernel_backend`` / ``compiled_kernels_available`` — which CSR
  kernel backend produced the numbers (see
  :mod:`repro.linalg.kernels`).
- ``gates_enforced`` — whether this run *asserted* its
  timing/throughput gates or merely recorded the measurements
  (mirroring ``bench_serving``'s ``timing_assertions_enforced``).
  Multicore speedup gates are skipped, not failed, below
  :data:`MULTICORE_GATE_MIN_CPUS` cores.
"""

import os

from repro.linalg import kernels

#: Multicore speedup gates assert only at (at least) this many cores —
#: below it the numbers are recorded with ``gates_enforced: false``.
MULTICORE_GATE_MIN_CPUS = 4


def multicore_gates_enforced() -> bool:
    """True when the runner has enough cores to assert speedup gates."""
    return (os.cpu_count() or 1) >= MULTICORE_GATE_MIN_CPUS


def provenance(gates_enforced: bool) -> dict:
    """The provenance block merged into every bench payload."""
    return {
        "cpu_count": os.cpu_count(),
        "kernel_backend": kernels.active_backend(),
        "compiled_kernels_available": kernels.compiled_available(),
        "gates_enforced": bool(gates_enforced),
    }
