"""Shared helpers for the table/figure reproduction benchmarks."""

from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro import IDRQR, LDA, RLDA, SRDA
from repro.eval import (
    figure_series,
    format_error_table,
    format_time_table,
    render_ascii_chart,
    run_experiment,
)
from repro.eval.figures import render_svg_chart

_SVG_DIR = Path(__file__).parent / "reports"


def paper_algorithms(srda_solver: str = "normal", srda_iters: int = 20) -> Dict:
    """The four algorithms of Section IV-B, with the paper's settings:
    α = 1 everywhere, SRDA closed-form on dense data / LSQR on sparse."""
    return {
        "LDA": lambda: LDA(),
        "RLDA": lambda: RLDA(alpha=1.0),
        "SRDA": lambda: SRDA(alpha=1.0, solver=srda_solver, max_iter=srda_iters),
        "IDR/QR": lambda: IDRQR(alpha=1.0),
    }


def run_and_render(
    dataset,
    algorithms,
    train_sizes,
    n_splits,
    seed,
    error_title: str,
    time_title: str,
    figure_title: str,
    record,
    memory_budget_bytes: Optional[float] = None,
):
    """Run the sweep, render the paper's three artifacts, record them."""
    result = run_experiment(
        dataset,
        algorithms,
        train_sizes=train_sizes,
        n_splits=n_splits,
        seed=seed,
        memory_budget_bytes=memory_budget_bytes,
    )
    blocks = [
        format_error_table(result, title=error_title),
        format_time_table(result, title=time_title),
        render_ascii_chart(
            figure_series(result, "error"), f"{figure_title} — error rate (%)"
        ),
        render_ascii_chart(
            figure_series(result, "time"), f"{figure_title} — training time (s)"
        ),
    ]
    record("\n\n".join(blocks))

    # also emit proper SVG figures alongside the text reports
    _SVG_DIR.mkdir(exist_ok=True)
    slug = figure_title.lower().replace(" ", "_").replace("(", "").replace(
        ")", ""
    )
    render_svg_chart(
        figure_series(result, "error"),
        f"{figure_title} — error rate",
        xlabel="training size",
        ylabel="error (%)",
        path=_SVG_DIR / f"{slug}_error",
    )
    render_svg_chart(
        figure_series(result, "time"),
        f"{figure_title} — training time",
        xlabel="training size",
        ylabel="seconds",
        path=_SVG_DIR / f"{slug}_time",
    )
    return result


def assert_dense_paper_shape(result):
    """The qualitative claims shared by Tables III–VIII:

    1. regularized methods (RLDA, SRDA) beat plain LDA at the smallest
       training size — the overfitting story;
    2. SRDA is at least as accurate as IDR/QR at the largest size — "no
       theoretical relation to LDA" costs IDR/QR accuracy;
    3. SRDA trains faster than LDA and RLDA at the largest size — the
       efficiency story;
    4. every method improves (or holds) with more training data.
    """
    sizes = result.size_labels
    smallest, largest = sizes[0], sizes[-1]

    lda_small = result.cell("LDA", smallest).mean_error
    assert result.cell("SRDA", smallest).mean_error < lda_small
    assert result.cell("RLDA", smallest).mean_error < lda_small

    assert (
        result.cell("SRDA", largest).mean_error
        <= result.cell("IDR/QR", largest).mean_error + 0.01
    )

    assert result.cell("SRDA", largest).mean_time < result.cell(
        "LDA", largest
    ).mean_time
    assert result.cell("SRDA", largest).mean_time < result.cell(
        "RLDA", largest
    ).mean_time

    for algo in result.algorithm_names:
        first = result.cell(algo, smallest).mean_error
        last = result.cell(algo, largest).mean_error
        assert last <= first + 0.02, (algo, first, last)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
