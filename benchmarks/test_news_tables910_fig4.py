"""Tables IX–X and Figure 4 — the 20Newsgroups sparse-text experiment.

This is the headline experiment: the data matrix is sparse and
high-dimensional, SRDA runs with LSQR (the paper fixes 15 iterations),
and the dense methods fall off a memory cliff as the training fraction
grows — the paper's em-dash cells.  We reproduce the cliff with the
Table-I memory model against an effective budget: the paper's machine
had 2 GB, of which roughly 1.2 GB was usable as workspace (MATLAB, OS
and copies take the rest — calibrated so the model reproduces the
paper's dash pattern at full scale: LDA dies at 20%, RLDA at 10%,
IDR/QR at 40%, SRDA never).
"""

from benchmarks._harness import once, run_and_render
from benchmarks.conftest import N_SPLITS_SPARSE, SCALE, record_report
from repro import IDRQR, LDA, RLDA, SRDA

TRAIN_RATIOS = [0.05, 0.10, 0.20, 0.30, 0.40, 0.50]

#: usable workspace on the paper's 2 GB machine (see module docstring)
EFFECTIVE_BUDGET_BYTES = 1.21e9


def news_algorithms():
    return {
        "LDA": lambda: LDA(),
        "RLDA": lambda: RLDA(alpha=1.0),
        # paper: iterative solution with LSQR, 15 iterations, α = 1
        "SRDA": lambda: SRDA(alpha=1.0, solver="lsqr", max_iter=15, tol=0.0),
        "IDR/QR": lambda: IDRQR(alpha=1.0),
    }


def test_news_error_time_and_memory_cliff(benchmark, news_dataset):
    def run():
        return run_and_render(
            news_dataset,
            news_algorithms(),
            TRAIN_RATIOS,
            N_SPLITS_SPARSE,
            seed=34,
            error_title=(
                f"Table IX — error rates (%) on 20NG-like text "
                f"(scale={SCALE}, {N_SPLITS_SPARSE} splits; "
                f"— = exceeds memory budget)"
            ),
            time_title="Table X — training time (s) on 20NG-like text",
            figure_title="Figure 4 (20Newsgroups)",
            record=lambda text: record_report("news_tables910_fig4", text),
            memory_budget_bytes=EFFECTIVE_BUDGET_BYTES,
        )

    result = once(benchmark, run)

    # SRDA must run at every ratio — the only method that scales
    for size in result.size_labels:
        assert not result.cell("SRDA", size).failed, size

    # the dense methods hit the wall exactly as in Tables IX/X:
    # RLDA never runs (n×n scatter alone is 5.5 GB), LDA dies at 20%,
    # IDR/QR survives until 40%
    def failure_index(algo):
        for i, size in enumerate(result.size_labels):
            if result.cell(algo, size).failed:
                return i
        return len(result.size_labels)

    assert failure_index("RLDA") == 0
    lda_fail = failure_index("LDA")
    idrqr_fail = failure_index("IDR/QR")
    assert lda_fail == result.size_labels.index("20%")
    assert idrqr_fail == result.size_labels.index("40%")

    # accuracy shape where comparable: SRDA beats IDR/QR at every ratio
    # both completed (paper: 27.3 vs 33.0 at 5%, 21.3 vs 29.0 at 10%…)
    for i, size in enumerate(result.size_labels):
        if i < idrqr_fail:
            assert (
                result.cell("SRDA", size).mean_error
                < result.cell("IDR/QR", size).mean_error
            ), size

    # SRDA improves monotonically-ish with more data
    errors = [result.cell("SRDA", s).mean_error for s in result.size_labels]
    assert errors[-1] < errors[0]

    # time scaling: SRDA's time at 50% stays within ~12x of its 5% time
    # (linear in m: 10x data → ~10x time), while LDA's last completed
    # point must already exceed SRDA's time at the same ratio
    srda_times = [result.cell("SRDA", s).mean_time for s in result.size_labels]
    assert srda_times[-1] / srda_times[0] < 25.0
    last_lda = result.size_labels[lda_fail - 1]
    assert (
        result.cell("LDA", last_lda).mean_time
        > result.cell("SRDA", last_lda).mean_time
    )
