"""Serving benchmark — emits ``BENCH_serving.json``.

Measures what ``repro.serving`` claims and asserts it:

1. **Sustained concurrent throughput**: a :class:`BatchingPredictor`
   under >= 4 concurrent pipelined clients must coalesce single-row
   requests into block calls (mean batch size > 1) and report p50 /
   p95 / p99 request latency plus rows/sec from its own SLO metrics.
   Asserted per client count in full mode.
2. **Batching advantage**: the coalescing path must beat a
   *single-row loop* — the same worker and queue machinery restricted
   to ``max_batch=1`` so every request becomes its own model call —
   on throughput, under the same client load.  Direct in-process
   per-row and block-call numbers are recorded as model-side
   references.  Asserted in full mode.

Sections 1 and 2 measure scheduler timing: whether requests coalesce
within ``max_wait`` depends on how loaded the host is, so on a shared
CI runner the coalescing/throughput claims are recorded but **not
asserted** under ``--smoke`` (the correctness claims in section 3 are
always asserted).
3. **partial_fit vs cold refit**: streaming batches through
   ``SRDA.partial_fit`` must match a cold ``fit`` on the concatenated
   data to ``<= 1e-6`` (float64) while the warm-started LSQR takes
   *strictly fewer* iterations than the cold refit on every batch —
   the measured payoff of carrying ``coef0`` forward.  Asserted per
   batch; the per-batch curve extends
   ``benchmarks/test_extension_incremental.py``.

The conditioning in section 3 matters: on well-conditioned data LSQR
converges in a handful of iterations either way and the warm start has
nothing to save.  The grid applies a power-law column spectrum
(cond ~1e2) so the cold solve needs hundreds of iterations and the
warm start's head start is visible.  Run from the repo root::

    PYTHONPATH=src:. python benchmarks/bench_serving.py            # full
    PYTHONPATH=src:. python benchmarks/bench_serving.py --smoke    # CI

The JSON schema is documented in ``docs/SERVING.md``.
"""

from __future__ import annotations

import argparse
import json
import threading
import time

import numpy as np

from repro.core.solver_config import SolverConfig
from repro.core.srda import SRDA
from repro.serving import BatchingPredictor

try:
    from benchmarks._provenance import provenance
except ImportError:  # run as `python benchmarks/bench_serving.py`
    from _provenance import provenance

#: Serving workload (sections 1 and 2).  ``window`` is the number of
#: in-flight tickets each client pipelines before waiting — an open
#: loop; a client that blocks on every row can never fill a batch.
FULL_SERVING = {
    "n_features": 256,
    "n_classes": 16,
    "rows_per_class": 40,
    "clients": (4, 8),
    "rows_per_client": 600,
    "window": 32,
    "max_batch": 128,
    "max_wait": 0.0005,
}
SMOKE_SERVING = dict(
    FULL_SERVING, clients=(4,), rows_per_client=200, rows_per_class=20
)

#: Incremental workload (section 3): power-law column spectrum with
#: cond ~1e2 so cold LSQR at tol=1e-10 needs hundreds of iterations.
FULL_INCREMENTAL = {
    "n_features": 80,
    "n_classes": 6,
    "cond": 1e2,
    "alpha": 0.01,
    "tol": 1e-10,
    "max_iter": 1000,
    "base_rows": 1000,
    "batch_rows": 10,
    "n_batches": 5,
}
SMOKE_INCREMENTAL = dict(FULL_INCREMENTAL, n_batches=2)

#: Acceptance bound for partial_fit equivalence (float64).
EQUIVALENCE_BOUND = 1e-6


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _fit_serving_model(cfg, seed):
    rng = np.random.default_rng(seed)
    n, c = cfg["n_features"], cfg["n_classes"]
    centers = 5.0 * rng.standard_normal((c, n))
    X = np.vstack(
        [
            centers[k] + rng.standard_normal((cfg["rows_per_class"], n))
            for k in range(c)
        ]
    )
    y = np.repeat(np.arange(c), cfg["rows_per_class"])
    model = SRDA(alpha=1.0, config=SolverConfig(solver="normal")).fit(X, y)
    rows = rng.standard_normal(
        (cfg["rows_per_client"], n)
    ).astype(np.float32)
    return model, rows


def _drive_clients(predictor, rows, n_clients, window):
    """Pipelined load: each client keeps ``window`` tickets in flight.

    Returns (throughput_rows_per_s, PredictorStats).  Throughput is
    wall-clock over the full client run — arrival through last result
    — not just model time, so queueing overhead counts against it.
    """
    barrier = threading.Barrier(n_clients + 1)
    errors = []

    def client():
        barrier.wait()
        pending = []
        try:
            for row in rows:
                pending.append(predictor.submit(row))
                if len(pending) >= window:
                    for ticket in pending:
                        ticket.done.wait(30)
                    pending = []
            for ticket in pending:
                ticket.done.wait(30)
            for ticket in pending:
                if ticket.error is not None:
                    raise ticket.error
        # Sanctioned boundary: client threads must hand any failure to
        # the main thread, which re-raises after join.
        except BaseException as err:  # repro: noqa-RPR002
            errors.append(err)

    threads = [threading.Thread(target=client) for _ in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    stats = predictor.stats()
    assert stats.requests == n_clients * len(rows)
    return n_clients * len(rows) / elapsed, stats


def run_concurrency(cfg, seed=0, strict=True):
    """Section 1: sustained throughput + tail latency per client count.

    ``strict=False`` (smoke mode) records the coalescing numbers but
    does not assert them — they depend on runner load.
    """
    model, rows = _fit_serving_model(cfg, seed)
    points = []
    for n_clients in cfg["clients"]:
        with BatchingPredictor(
            model, max_batch=cfg["max_batch"], max_wait=cfg["max_wait"]
        ) as predictor:
            throughput, stats = _drive_clients(
                predictor, rows, n_clients, cfg["window"]
            )
        assert stats.p99_latency_s > 0.0
        assert stats.p99_latency_s >= stats.p95_latency_s >= 0.0
        if strict:
            # Coalescing must actually happen under concurrent load.
            assert stats.mean_batch_size > 1.0
            assert stats.batches < stats.requests
        points.append(
            {
                "clients": n_clients,
                "requests": stats.requests,
                "throughput_rows_per_s": throughput,
                "mean_batch_size": stats.mean_batch_size,
                "p50_latency_s": stats.p50_latency_s,
                "p95_latency_s": stats.p95_latency_s,
                "p99_latency_s": stats.p99_latency_s,
            }
        )
    return {
        "rows_per_client": cfg["rows_per_client"],
        "window": cfg["window"],
        "max_batch": cfg["max_batch"],
        "max_wait_s": cfg["max_wait"],
        "points": points,
    }


def run_batching_advantage(cfg, seed=0, strict=True):
    """Section 2: coalescing vs a single-row loop, same client load.

    ``strict=False`` (smoke mode) records the comparison but does not
    assert it — the margin is a timing race on a loaded runner.
    """
    model, rows = _fit_serving_model(cfg, seed)
    n_clients = max(cfg["clients"])

    with BatchingPredictor(
        model, max_batch=cfg["max_batch"], max_wait=cfg["max_wait"]
    ) as predictor:
        batched_tp, batched_stats = _drive_clients(
            predictor, rows, n_clients, cfg["window"]
        )
    # The single-row loop: identical queue/worker machinery, but
    # max_batch=1 forces one model call per request.
    with BatchingPredictor(model, max_batch=1, max_wait=0.0) as predictor:
        loop_tp, loop_stats = _drive_clients(
            predictor, rows, n_clients, cfg["window"]
        )
    assert loop_stats.mean_batch_size == 1.0

    # Model-side references without any serving machinery.
    _, block_seconds = timed(lambda: model.predict(rows))
    direct_block_tp = len(rows) / block_seconds

    def per_row_loop():
        for row in rows:
            model.predict(row[None, :])

    _, loop_seconds = timed(per_row_loop)
    direct_row_tp = len(rows) / loop_seconds

    # The acceptance claim: batching must pay for its queueing.
    if strict:
        assert batched_tp > loop_tp, (
            f"batched {batched_tp:.0f} rows/s must beat the single-row "
            f"loop at {loop_tp:.0f} rows/s"
        )
    return {
        "clients": n_clients,
        "batched": {
            "throughput_rows_per_s": batched_tp,
            "mean_batch_size": batched_stats.mean_batch_size,
            "p99_latency_s": batched_stats.p99_latency_s,
        },
        "single_row_loop": {
            "throughput_rows_per_s": loop_tp,
            "mean_batch_size": loop_stats.mean_batch_size,
            "p99_latency_s": loop_stats.p99_latency_s,
        },
        "speedup": batched_tp / loop_tp,
        "direct_reference": {
            "per_row_loop_rows_per_s": direct_row_tp,
            "block_call_rows_per_s": direct_block_tp,
        },
    }


def _make_incremental_stream(cfg, seed):
    """Ill-conditioned class blobs under a power-law column spectrum."""
    rng = np.random.default_rng(seed)
    n, c = cfg["n_features"], cfg["n_classes"]
    U = np.linalg.qr(rng.standard_normal((n, n)))[0]
    spectrum = cfg["cond"] ** (-np.arange(n) / (n - 1))
    base = U * spectrum
    centers = 2.0 * rng.standard_normal((c, n))

    def make(m):
        y = rng.integers(0, c, size=m)
        y[:c] = np.arange(c)  # every class present in every batch
        X = (centers[y] + rng.standard_normal((m, n))) @ base
        return X, y

    return make


def run_partial_fit_curve(cfg, seed=0):
    """Section 3: warm partial_fit vs cold refit, per streamed batch."""
    make = _make_incremental_stream(cfg, seed)
    kwargs = dict(
        alpha=cfg["alpha"],
        config=SolverConfig(solver="lsqr"),
        max_iter=cfg["max_iter"],
        tol=cfg["tol"],
    )
    X0, y0 = make(cfg["base_rows"])
    warm = SRDA(**kwargs)
    _, base_seconds = timed(lambda: warm.partial_fit(X0, y0))
    seen_X, seen_y = [X0], [y0]

    curve = []
    for index in range(cfg["n_batches"]):
        Xb, yb = make(cfg["batch_rows"])
        seen_X.append(Xb)
        seen_y.append(yb)
        _, warm_seconds = timed(lambda: warm.partial_fit(Xb, yb))
        warm_iters = int(max(warm.lsqr_iterations_))
        cold = SRDA(**kwargs)
        X_all = np.vstack(seen_X)
        y_all = np.concatenate(seen_y)
        _, cold_seconds = timed(lambda: cold.fit(X_all, y_all))
        cold_iters = int(max(cold.lsqr_iterations_))
        max_diff = float(
            np.abs(warm.components_ - cold.components_).max()
        )
        # The acceptance claims: same answer, strictly fewer iterations.
        assert max_diff <= EQUIVALENCE_BOUND, (
            f"batch {index}: partial_fit drifted {max_diff:.2e} from the "
            f"cold refit (bound {EQUIVALENCE_BOUND:.0e})"
        )
        assert warm_iters < cold_iters, (
            f"batch {index}: warm start took {warm_iters} iterations, "
            f"cold refit {cold_iters} — warm must be strictly below"
        )
        curve.append(
            {
                "batch": index + 1,
                "rows_total": int(X_all.shape[0]),
                "warm_iterations": warm_iters,
                "cold_iterations": cold_iters,
                "iteration_ratio": cold_iters / warm_iters,
                "warm_seconds": warm_seconds,
                "cold_seconds": cold_seconds,
                "max_coef_diff": max_diff,
            }
        )
    assert warm.fit_report_.incremental["batches"] == cfg["n_batches"] + 1
    return {
        "n_features": cfg["n_features"],
        "n_classes": cfg["n_classes"],
        "cond": cfg["cond"],
        "alpha": cfg["alpha"],
        "tol": cfg["tol"],
        "base_rows": cfg["base_rows"],
        "batch_rows": cfg["batch_rows"],
        "base_fit_seconds": base_seconds,
        "equivalence_bound": EQUIVALENCE_BOUND,
        "warm_below_cold_every_batch": True,
        "curve": curve,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI — asserts the correctness claims only; "
        "timing-sensitive coalescing/throughput claims are recorded "
        "but not asserted",
    )
    parser.add_argument(
        "--out", default="BENCH_serving.json", help="output JSON path"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="problem-generation seed"
    )
    args = parser.parse_args(argv)

    serving_cfg = SMOKE_SERVING if args.smoke else FULL_SERVING
    incremental_cfg = SMOKE_INCREMENTAL if args.smoke else FULL_INCREMENTAL

    strict = not args.smoke
    concurrency = run_concurrency(serving_cfg, seed=args.seed, strict=strict)
    for point in concurrency["points"]:
        print(
            f"{point['clients']} clients: "
            f"{point['throughput_rows_per_s']:8.0f} rows/s  "
            f"batch {point['mean_batch_size']:5.1f}  "
            f"p50 {point['p50_latency_s'] * 1e3:6.2f}ms  "
            f"p99 {point['p99_latency_s'] * 1e3:6.2f}ms"
        )

    advantage = run_batching_advantage(
        serving_cfg, seed=args.seed, strict=strict
    )
    print(
        f"batched {advantage['batched']['throughput_rows_per_s']:.0f} "
        f"rows/s vs single-row loop "
        f"{advantage['single_row_loop']['throughput_rows_per_s']:.0f} "
        f"rows/s ({advantage['speedup']:.1f}x)"
    )

    incremental = run_partial_fit_curve(incremental_cfg, seed=args.seed)
    for point in incremental["curve"]:
        print(
            f"batch {point['batch']} (+{incremental['batch_rows']} rows): "
            f"warm {point['warm_iterations']:4d} vs cold "
            f"{point['cold_iterations']:4d} iters "
            f"({point['iteration_ratio']:.2f}x), "
            f"diff {point['max_coef_diff']:.1e}"
        )

    payload = {
        "benchmark": "serving",
        "mode": "smoke" if args.smoke else "full",
        "timing_assertions_enforced": strict,
        **provenance(strict),
        "concurrency": concurrency,
        "batching_advantage": advantage,
        "partial_fit_vs_refit": incremental,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return payload


if __name__ == "__main__":
    main()
