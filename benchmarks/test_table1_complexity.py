"""Table I — the complexity model, analytic and empirical.

Regenerates the operation-count and memory table for the paper's dataset
shapes and validates the model's claims: maximum normal-equations speedup
of 9 at ``m = n``, cubic LDA vs linear SRDA-LSQR, and the exact match
between the model's LSQR cost and an instrumented run.
"""

import numpy as np

from benchmarks._harness import once
from benchmarks.conftest import record_report
from repro.complexity import (
    FlamCountingOperator,
    lda_flam,
    lda_memory,
    max_normal_speedup,
    srda_lsqr_flam,
    srda_lsqr_memory,
    srda_normal_flam,
    srda_normal_memory,
    table1,
)
from repro.linalg.lsqr import lsqr
from repro.linalg.operators import as_operator

# Table II shapes: (name, m, n, c, s or None) — m is the full dataset.
SHAPES = [
    ("PIE", 11560, 1024, 68, None),
    ("Isolet", 6237, 617, 26, None),
    ("MNIST", 4000, 784, 10, None),
    ("20Newsgroups", 18941, 26214, 20, 90.0),
]


def render_table1() -> str:
    lines = [
        "Table I — predicted flam / memory (floats) per Table-II shape",
        f"{'dataset':14} {'algorithm':26} {'flam':>14} {'memory':>14}",
        "-" * 72,
    ]
    for name, m, n, c, s in SHAPES:
        rows = table1(m, n, c, k=20, s=s)
        for algo, row in rows.items():
            lines.append(
                f"{name:14} {algo:26} {row['flam']:14.3e} {row['memory']:14.3e}"
            )
    lines.append("")
    lines.append(
        f"max speedup of SRDA(normal) over LDA at m = n: "
        f"{max_normal_speedup():.2f} (paper: 9)"
    )
    return "\n".join(lines)


def test_table1_model(benchmark):
    text = once(benchmark, render_table1)
    record_report("table1_complexity", text)

    # claim: maximum speedup 9 at m = n
    assert max_normal_speedup() == 9.0

    # claim: SRDA-NE beats LDA on every Table-II shape
    for _, m, n, c, _ in SHAPES:
        assert srda_normal_flam(m, n, c) < lda_flam(m, n, c)

    # claim: only sparse SRDA-LSQR fits 20NG in 2 GB
    m, n, c, s = 18941, 26214, 20, 90.0
    budget = 2 * 1024**3 / 8  # floats
    assert lda_memory(m, n, c) > budget
    assert srda_lsqr_memory(m, n, c, s=s) < budget / 100


def test_empirical_lsqr_cost_matches_model(benchmark, rng=None):
    """An instrumented LSQR run must hit the model's data-touching term
    exactly: 2·nnz per iteration plus one setup product."""
    rng = np.random.default_rng(7)
    m, n, iters = 400, 150, 15

    def run():
        op = FlamCountingOperator(as_operator(rng.standard_normal((m, n))))
        result = lsqr(op, rng.standard_normal(m), iter_lim=iters,
                      atol=0, btol=0)
        return op, result

    op, result = once(benchmark, run)
    assert op.flam == (2 * result.itn + 1) * m * n
    predicted = srda_lsqr_flam(m, n, 2, k=result.itn)
    data_term = result.itn * 2 * m * n
    # the model's per-response data term matches what the counter saw
    assert abs(predicted - (data_term + result.itn * (3 * m + 5 * n)
                            + m * 4)) < 1e-6


def test_model_scaling_exponents(benchmark):
    """Cubic LDA vs linear SRDA-LSQR, measured on the model itself."""
    from repro.complexity import loglog_slope

    def slopes():
        ts = np.array([500, 1000, 2000, 4000])
        lda = [lda_flam(t, t, 10) for t in ts]
        lsqr_m = [srda_lsqr_flam(int(t), 800, 10, k=20) for t in ts]
        lsqr_n = [srda_lsqr_flam(800, int(t), 10, k=20) for t in ts]
        return (
            loglog_slope(ts, lda),
            loglog_slope(ts, lsqr_m),
            loglog_slope(ts, lsqr_n),
        )

    lda_slope, lsqr_m_slope, lsqr_n_slope = once(benchmark, slopes)
    assert lda_slope > 2.5
    assert 0.9 < lsqr_m_slope < 1.1
    assert 0.5 < lsqr_n_slope <= 1.05
