"""Extension E1 — sparse projective functions (the framework's ref [15]).

Not a paper artifact, but the design choice DESIGN.md highlights: the
regression step is swappable.  This benchmark trades ℓ1 strength against
accuracy on the text workload and reports how few terms per discriminant
direction suffice — the interpretability story of sparse subspace
learning.
"""

import numpy as np

from benchmarks._harness import once
from benchmarks.conftest import record_report
from repro import SRDA, SparseSRDA
from repro.datasets import make_text, ratio_split
from repro.eval.metrics import error_rate

L1_GRID = [0.0003, 0.001, 0.003, 0.01, 0.03]


def test_sparsity_accuracy_tradeoff(benchmark):
    dataset = make_text(n_docs=3000, vocab_size=8000, seed=81)
    rng = np.random.default_rng(81)
    train_idx, test_idx = ratio_split(dataset.y, 0.2, rng)
    X_train, y_train = dataset.subset(train_idx)
    X_test, y_test = dataset.subset(test_idx)

    def run():
        rows = []
        dense_model = SRDA(alpha=1.0, solver="lsqr", max_iter=15,
                           tol=0.0).fit(X_train, y_train)
        dense_error = error_rate(y_test, dense_model.predict(X_test))
        for alpha in L1_GRID:
            model = SparseSRDA(alpha=alpha, l1_ratio=1.0, max_iter=200,
                               tol=1e-5).fit(X_train, y_train)
            error = error_rate(y_test, model.predict(X_test))
            nonzero_per_direction = np.count_nonzero(
                model.components_, axis=0
            ).mean()
            rows.append((alpha, error, model.sparsity_,
                         nonzero_per_direction))
        return dense_error, rows

    dense_error, rows = once(benchmark, run)

    lines = [
        "Extension E1 — sparse SRDA on 20NG-like text "
        f"(8000 terms; dense SRDA error {100 * dense_error:.1f}%)",
        f"{'l1 alpha':>10} {'error (%)':>10} {'sparsity':>9} "
        f"{'terms/direction':>16}",
        "-" * 50,
    ]
    for alpha, error, sparsity, nnz in rows:
        lines.append(
            f"{alpha:>10.4f} {100 * error:>10.1f} {sparsity:>9.3f} "
            f"{nnz:>16.0f}"
        )
    record_report("extension_sparse_projections", "\n".join(lines))

    errors = np.array([row[1] for row in rows])
    sparsities = np.array([row[2] for row in rows])
    # sparsity increases along the grid
    assert np.all(np.diff(sparsities) >= -1e-9), sparsities
    # a usefully sparse model (≥ 70% zeros) stays within 10 points of
    # the dense SRDA error — the interpretability trade-off is cheap
    usable = errors[sparsities >= 0.7]
    assert usable.size > 0
    assert usable.min() <= dense_error + 0.10, (usable.min(), dense_error)
    # and the extreme end actually is sparse
    assert sparsities[-1] > 0.9
