"""Ablation A2 — LSQR iteration count.

Section III-C.2: "LSQR converges very fast ... 20 iterations are
enough"; the 20Newsgroups experiments fix 15.  The claim is about the
sparse text workload (the only one the paper runs LSQR on), so we sweep
k there: classification error and distance to the exact ridge solution
must flatten by k ≈ 15.

A second panel repeats the sweep on the dense PIE-like faces: the same
budget suffices there too (the error settles by k ≈ 12 even before the
numerical solution fully converges), confirming "20 iterations are
enough" across both workload types.
"""

import numpy as np

from benchmarks._harness import once
from benchmarks.conftest import N_SPLITS, record_report
from repro import SRDA
from repro.datasets import make_text
from repro.datasets.splits import per_class_split, ratio_split, split_seeds
from repro.eval.metrics import error_rate

ITERATION_GRID = [1, 2, 3, 5, 8, 12, 15, 20, 30]


def sweep(dataset, split_fn, exact_factory, sparse, seed):
    errors = np.zeros(len(ITERATION_GRID))
    gaps = np.zeros(len(ITERATION_GRID))
    runs = 0
    for split_seed in split_seeds(seed, max(2, N_SPLITS - 1)):
        rng = np.random.default_rng(int(split_seed))
        train_idx, test_idx = split_fn(rng)
        X_train, y_train = dataset.subset(train_idx)
        X_test, y_test = dataset.subset(test_idx)
        exact = exact_factory().fit(
            X_train.to_dense() if sparse else X_train, y_train
        )
        exact_norm = np.linalg.norm(exact.components_)
        for i, k in enumerate(ITERATION_GRID):
            model = SRDA(
                alpha=1.0,
                solver="lsqr",
                max_iter=k,
                tol=0.0,
                centering=False if sparse else "auto",
            ).fit(X_train, y_train)
            errors[i] += error_rate(y_test, model.predict(X_test))
            gaps[i] += (
                np.linalg.norm(model.components_ - exact.components_)
                / exact_norm
            )
        runs += 1
    return errors / runs, gaps / runs


def render(title, errors, gaps):
    lines = [
        title,
        f"{'k':>4} {'error (%)':>10} {'rel. gap to exact':>18}",
        "-" * 36,
    ]
    for k, err, gap in zip(ITERATION_GRID, errors, gaps):
        lines.append(f"{k:>4} {100 * err:>10.2f} {gap:>18.2e}")
    return "\n".join(lines)


def test_iterations_on_sparse_text(benchmark):
    dataset = make_text(n_docs=6000, vocab_size=26214, seed=71)

    def run():
        return sweep(
            dataset,
            lambda rng: ratio_split(dataset.y, 0.05, rng),
            lambda: SRDA(alpha=1.0, solver="normal", centering=False),
            sparse=True,
            seed=72,
        )

    errors, gaps = once(benchmark, run)
    record_report(
        "ablation_lsqr_iters_text",
        render(
            "Ablation A2 — SRDA vs LSQR iterations on 20NG-like text "
            "(5% train; the workload the paper's '15 iterations' targets)",
            errors,
            gaps,
        ),
    )
    # the paper's claim: converged for practical purposes by k = 15
    k15 = ITERATION_GRID.index(15)
    k30 = ITERATION_GRID.index(30)
    assert gaps[k15] < 0.05, gaps
    assert abs(errors[k15] - errors[k30]) < 0.01, errors
    # and far from converged at k = 1 (the sweep is informative)
    assert gaps[0] > 0.2


def test_iterations_on_dense_faces(benchmark, pie_dataset):
    def run():
        return sweep(
            pie_dataset,
            lambda rng: per_class_split(pie_dataset.y, 10, rng),
            lambda: SRDA(alpha=1.0, solver="normal"),
            sparse=False,
            seed=73,
        )

    errors, gaps = once(benchmark, run)
    record_report(
        "ablation_lsqr_iters_faces",
        render(
            "Ablation A2b — the dense panel (PIE-like, 10 train/class): "
            "the same 15-20 iteration budget suffices on dense pixels",
            errors,
            gaps,
        ),
    )
    # the error settles before the numerical solution fully converges
    k12 = ITERATION_GRID.index(12)
    assert abs(errors[k12] - errors[-1]) < 0.08, errors
    # and by k = 20 the solution is close to the exact ridge answer
    k20 = ITERATION_GRID.index(20)
    assert gaps[k20] < 0.05, gaps
    assert gaps[0] > 0.5  # while k = 1 is nowhere near
