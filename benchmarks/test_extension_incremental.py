"""Extension E2 — incremental updates on a growing corpus.

The paper positions IDR/QR as the incremental competitor; SRDA's LSQR
path gets the same capability through warm starts.  This benchmark
streams a text corpus in batches and compares four update policies on
total work and final accuracy:

- IDR/QR ``partial_fit`` (Ye et al.'s sufficient-statistics update);
- SRDA ``partial_fit`` (count-space responses + warm-started LSQR);
- SRDA cold refit per batch;
- SRDA warm-started refit per batch.

The two SRDA streaming policies differ in bookkeeping, not math: the
warm refit recomputes responses from the full label vector each batch,
while ``partial_fit`` carries integer class counts forward and never
revisits old labels.  Both should land on the same iteration savings
over the cold refit.
"""

import time

import numpy as np

from benchmarks._harness import once
from benchmarks.conftest import record_report
from repro import IDRQR, SRDA, SolverConfig
from repro.datasets import make_text, ratio_split
from repro.eval.metrics import error_rate

BATCHES = [1000, 1500, 2000, 2500, 3000]

SRDA_KWARGS = dict(
    alpha=1.0, config=SolverConfig(solver="lsqr"), max_iter=300, tol=1e-6
)


def test_incremental_update_policies(benchmark):
    dataset = make_text(n_docs=4000, vocab_size=12000, seed=91)
    rng = np.random.default_rng(91)
    stream_idx, test_idx = ratio_split(dataset.y, 0.75, rng)
    rng.shuffle(stream_idx)
    X_test, y_test = dataset.subset(test_idx)
    X_test_dense = X_test.to_dense()

    def run():
        idrqr = IDRQR(alpha=1.0)
        srda_cold_time = 0.0
        srda_warm_time = 0.0
        idrqr_time = 0.0
        partial_time = 0.0
        warm = SRDA(warm_start=True, **SRDA_KWARGS)
        partial = SRDA(**SRDA_KWARGS)
        warm_iterations = 0
        cold_iterations = 0
        partial_iterations = 0
        previous = 0
        for size in BATCHES:
            batch_idx = stream_idx[previous:size]
            X_batch, y_batch = dataset.subset(batch_idx)
            seen_idx = stream_idx[:size]
            X_seen, y_seen = dataset.subset(seen_idx)

            start = time.perf_counter()
            if previous == 0:
                idrqr.fit(X_batch.to_dense(), y_batch)
            else:
                idrqr.partial_fit(X_batch.to_dense(), y_batch)
            idrqr_time += time.perf_counter() - start

            start = time.perf_counter()
            partial.partial_fit(X_batch, y_batch)
            partial_time += time.perf_counter() - start
            partial_iterations += sum(partial.lsqr_iterations_)

            start = time.perf_counter()
            warm.fit(X_seen, y_seen)
            srda_warm_time += time.perf_counter() - start
            warm_iterations += sum(warm.lsqr_iterations_)

            cold = SRDA(**SRDA_KWARGS)
            start = time.perf_counter()
            cold.fit(X_seen, y_seen)
            srda_cold_time += time.perf_counter() - start
            cold_iterations += sum(cold.lsqr_iterations_)
            previous = size

        return {
            "idrqr_time": idrqr_time,
            "partial_time": partial_time,
            "warm_time": srda_warm_time,
            "cold_time": srda_cold_time,
            "partial_iterations": partial_iterations,
            "warm_iterations": warm_iterations,
            "cold_iterations": cold_iterations,
            "partial_batches": partial.fit_report_.incremental["batches"],
            "idrqr_error": error_rate(y_test, idrqr.predict(X_test_dense)),
            "partial_error": error_rate(y_test, partial.predict(X_test)),
            "warm_error": error_rate(y_test, warm.predict(X_test)),
            "cold_error": error_rate(
                y_test,
                SRDA(**SRDA_KWARGS)
                .fit(*dataset.subset(stream_idx[: BATCHES[-1]]))
                .predict(X_test),
            ),
        }

    stats = once(benchmark, run)

    record_report(
        "extension_incremental",
        "\n".join(
            [
                "Extension E2 — streaming a 3000-doc corpus in 5 batches",
                f"{'policy':28} {'total fit (s)':>14} {'LSQR iters':>11} "
                f"{'final error':>12}",
                "-" * 70,
                f"{'IDR/QR partial_fit':28} {stats['idrqr_time']:>14.2f} "
                f"{'—':>11} {100 * stats['idrqr_error']:>11.1f}%",
                f"{'SRDA partial_fit':28} {stats['partial_time']:>14.2f} "
                f"{stats['partial_iterations']:>11} "
                f"{100 * stats['partial_error']:>11.1f}%",
                f"{'SRDA warm-started refit':28} {stats['warm_time']:>14.2f} "
                f"{stats['warm_iterations']:>11} "
                f"{100 * stats['warm_error']:>11.1f}%",
                f"{'SRDA cold refit':28} {stats['cold_time']:>14.2f} "
                f"{stats['cold_iterations']:>11} "
                f"{100 * stats['cold_error']:>11.1f}%",
            ]
        ),
    )

    # warm starts must save LSQR iterations over cold refits, whether
    # the caller re-feeds the corpus (warm refit) or streams batches
    # (partial_fit)...
    assert stats["warm_iterations"] < stats["cold_iterations"]
    assert stats["partial_iterations"] < stats["cold_iterations"]
    assert stats["partial_batches"] == len(BATCHES)
    # ...without costing accuracy
    assert stats["warm_error"] <= stats["cold_error"] + 0.01
    assert stats["partial_error"] <= stats["cold_error"] + 0.01
    # and SRDA (any policy) stays more accurate than IDR/QR, as in
    # every accuracy table of the paper
    assert stats["warm_error"] < stats["idrqr_error"]
    assert stats["partial_error"] < stats["idrqr_error"]
