"""Ablation A4 — the title claim: training in linear time.

Measures wall-clock fit time as the problem grows and fits log–log
slopes: SRDA-LSQR must scale ~linearly in the number of samples (and in
the number of features at fixed nnz per row), while LDA's slope against
t = min(m, n) on square problems reflects its cubic term.
"""

import time

import numpy as np

from benchmarks._harness import once
from benchmarks.conftest import record_report
from repro import LDA, SRDA
from repro.complexity import loglog_slope
from repro.datasets import make_text
from repro.linalg.sparse import CSRMatrix


def timed_fit(model, X, y, repeats=1):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        model.fit(X, y)
        best = min(best, time.perf_counter() - start)
    return best


def test_srda_lsqr_linear_in_samples(benchmark):
    base = make_text(n_docs=16000, vocab_size=26214, seed=64)

    def run():
        sizes = [2000, 4000, 8000, 16000]
        times = []
        for m in sizes:
            idx = np.arange(m)
            X, y = base.subset(idx)
            model = SRDA(alpha=1.0, solver="lsqr", max_iter=15, tol=0.0)
            times.append(timed_fit(model, X, y, repeats=2))
        return sizes, times

    sizes, times = once(benchmark, run)
    slope = loglog_slope(sizes, times)
    record_report(
        "scaling_srda_vs_m",
        "\n".join(
            ["Scaling — SRDA-LSQR fit time vs number of documents"]
            + [f"  m={m:>6}: {t:8.3f} s" for m, t in zip(sizes, times)]
            + [f"log-log slope: {slope:.2f} (linear time → 1.0)"]
        ),
    )
    assert slope < 1.4, (slope, times)


def test_srda_lsqr_subquadratic_in_features(benchmark):
    """With nnz per row fixed, growing the vocabulary must cost far less
    than linearly in n·m (the 5n vector term is all that grows)."""
    rng = np.random.default_rng(65)

    def run():
        m, s, c = 3000, 80, 10
        y = np.arange(m) % c
        vocab_sizes = [8000, 16000, 32000, 64000]
        times = []
        for n in vocab_sizes:
            rows = []
            for i in range(m):
                cols = rng.choice(n, s, replace=False)
                vals = rng.random(s) + (y[i] == cols % c)
                rows.append((cols, vals))
            X = CSRMatrix.from_rows(rows, n)
            model = SRDA(alpha=1.0, solver="lsqr", max_iter=15, tol=0.0)
            times.append(timed_fit(model, X, y))
        return vocab_sizes, times

    vocab_sizes, times = once(benchmark, run)
    slope = loglog_slope(vocab_sizes, times)
    record_report(
        "scaling_srda_vs_n",
        "\n".join(
            ["Scaling — SRDA-LSQR fit time vs vocabulary size (fixed nnz)"]
            + [f"  n={n:>6}: {t:8.3f} s" for n, t in zip(vocab_sizes, times)]
            + [f"log-log slope: {slope:.2f} (sub-linear expected)"]
        ),
    )
    assert slope < 0.8, (slope, times)


def test_lda_superlinear_in_t(benchmark):
    rng = np.random.default_rng(66)

    def run():
        sizes = [256, 512, 1024, 2048]
        times = []
        for t in sizes:
            y = np.arange(t) % 8
            X = rng.standard_normal((t, t)) + rng.standard_normal((8, t))[y]
            times.append(timed_fit(LDA(), X, y))
        return sizes, times

    sizes, times = once(benchmark, run)
    slope = loglog_slope(sizes, times)
    record_report(
        "scaling_lda_vs_t",
        "\n".join(
            ["Scaling — LDA fit time vs t = m = n (square problems)"]
            + [f"  t={t:>5}: {s:8.3f} s" for t, s in zip(sizes, times)]
            + [f"log-log slope: {slope:.2f} (cubic term → approaches 3)"]
        ),
    )
    assert slope > 1.7, (slope, times)
