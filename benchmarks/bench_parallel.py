"""Sharded-backend benchmark — emits ``BENCH_parallel.json``.

Measures what the parallel layer claims and what it must not break:

1. **Wall time** of :func:`repro.linalg.block_lsqr.block_lsqr` through a
   :class:`repro.parallel.ShardedOperator` on the serial, thread, and
   process backends at several worker counts, against the pre-PR direct
   (unsharded) path on the paper's 20Newsgroups-like shape
   (m=20000, n=26000, c=20).
2. **Parity**: every sharded variant must be *bitwise identical* to the
   sharded serial run (``max_rel_diff_vs_serial == 0``), and within the
   adjoint fold tolerance of the direct path
   (``max_rel_diff_vs_direct <= 1e-12``).  Both are asserted, not just
   recorded.
3. **Serial overhead**: a single-shard ShardedOperator is a passthrough
   and must cost <2% over the direct path.
4. **Experiment grids**: ``run_experiment(n_jobs=...)`` error grids must
   be bitwise identical across worker counts.
5. **Kernel microbench**: compiled vs reference CSR kernels,
   single-threaded and bitwise-checked; when the extension is built the
   compiled ``matvec``/``matmat`` must be ≥1.5× the reference.

Speedups are recorded together with the provenance block
(``cpu_count``/``kernel_backend``/``gates_enforced``) — on a
single-core CI runner the threaded numbers honestly show ~1x with
``gates_enforced: false``; on a ≥4-core runner the thread-x4
``speedup_vs_direct > 1`` gate is *asserted*.  The parity columns are
the part that must hold everywhere.

Run from the repo root::

    PYTHONPATH=src:. python benchmarks/bench_parallel.py            # full
    PYTHONPATH=src:. python benchmarks/bench_parallel.py --smoke    # CI

The JSON schema is documented in ``docs/PARALLEL.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.core.srda import SRDA
from repro.datasets import Dataset
from repro.eval.experiment import run_experiment
from repro.linalg import kernels
from repro.linalg.block_lsqr import block_lsqr
from repro.linalg.operators import as_operator
from repro.linalg.sparse import CSRMatrix
from repro.parallel import ShardedOperator, resolve_backend

try:
    from benchmarks._provenance import multicore_gates_enforced, provenance
except ImportError:  # run as `python benchmarks/bench_parallel.py`
    from _provenance import multicore_gates_enforced, provenance

FULL_CASE = dict(m=20000, n=26000, classes=20, row_nnz=80)
SMOKE_CASE = dict(m=1200, n=900, classes=5, row_nnz=30)

FULL_WORKERS = [1, 2, 4, 8]
SMOKE_WORKERS = [2]

#: Single-threaded per-kernel microbench problem — large enough that
#: the O(nnz) loop dominates python call overhead on both backends.
MICRO_CASE = dict(m=20000, n=2000, row_nnz=32)
SMOKE_MICRO_CASE = dict(m=4000, n=800, row_nnz=16)

#: The compiled backend must beat the numpy reference by at least this
#: factor on matvec and matmat, single-threaded (asserted whenever the
#: extension is importable — no core count required).
MIN_KERNEL_SPEEDUP = 1.5


def make_problem(m, n, row_nnz, seed=0):
    """Sparse text-like data with sorted row indices (bench_block_lsqr's)."""
    rng = np.random.default_rng(seed)
    indices = np.empty(m * row_nnz, dtype=np.int64)
    for i in range(m):
        indices[i * row_nnz : (i + 1) * row_nnz] = np.sort(
            rng.choice(n, size=row_nnz, replace=False)
        )
    data = rng.standard_normal(m * row_nnz)
    indptr = np.arange(0, (m + 1) * row_nnz, row_nnz, dtype=np.int64)
    return CSRMatrix(data, indices, indptr, shape=(m, n))


def make_rhs(m, classes, seed=1):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, classes - 1))


def best_of(repeats, fn):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def rel_diff(X, reference):
    scale = max(1.0, float(np.max(np.abs(reference))))
    return float(np.max(np.abs(X - reference)) / scale)


def solve(op, B, iter_lim, repeats):
    return best_of(
        repeats,
        lambda: block_lsqr(op, B, damp=1.0, atol=0.0, btol=0.0,
                           iter_lim=iter_lim).X,
    )


def run_solver_grid(case, iter_lim, repeats, worker_counts, include_process):
    """Direct vs sharded serial/thread/process at each worker count."""
    matrix = make_problem(case["m"], case["n"], case["row_nnz"])
    B = make_rhs(case["m"], case["classes"])

    direct_seconds, direct_x = solve(
        as_operator(matrix), B, iter_lim, repeats
    )

    with ShardedOperator(matrix, backend="serial") as op:
        n_shards = op.n_shards
        serial_seconds, serial_x = solve(op, B, iter_lim, repeats)

    variants = []
    for backend_name in ("thread", "process") if include_process else ("thread",):
        for workers in worker_counts:
            backend = resolve_backend(backend_name, workers)
            try:
                with ShardedOperator(matrix, backend=backend) as op:
                    seconds, X = solve(op, B, iter_lim, repeats)
            finally:
                backend.close()
            vs_serial = rel_diff(X, serial_x)
            vs_direct = rel_diff(X, direct_x)
            assert vs_serial == 0.0, (
                f"{backend_name} x{workers} diverged from the sharded "
                f"serial run (max_rel_diff={vs_serial:.3e}); sharded "
                "results must not depend on the backend"
            )
            assert vs_direct <= 1e-12, (
                f"{backend_name} x{workers} drifted {vs_direct:.3e} from "
                "the direct path; adjoint fold tolerance is 1e-12"
            )
            variants.append(
                {
                    "backend": backend_name,
                    "n_workers": workers,
                    "seconds": seconds,
                    "speedup_vs_serial": serial_seconds / seconds,
                    "speedup_vs_direct": direct_seconds / seconds,
                    "max_rel_diff_vs_serial": vs_serial,
                    "max_rel_diff_vs_direct": vs_direct,
                }
            )

    return {
        **case,
        "nnz": matrix.nnz,
        "iter_lim": iter_lim,
        "n_shards": n_shards,
        "direct": {"seconds": direct_seconds},
        "sharded_serial": {
            "seconds": serial_seconds,
            "overhead_vs_direct": serial_seconds / direct_seconds - 1.0,
            "max_rel_diff_vs_direct": rel_diff(serial_x, direct_x),
        },
        "variants": variants,
    }


def run_kernel_microbench(case, repeats, min_speedup=MIN_KERNEL_SPEEDUP):
    """Compiled vs reference kernels, single-threaded, bitwise-checked.

    Records per-kernel best-of times for both backends; when the
    compiled extension is importable, asserts its raison d'être —
    ``matvec`` and ``matmat`` at least ``min_speedup``× the reference
    (``rmatvec`` is recorded; its scatter loop tracks matvec closely).
    """
    matrix = make_problem(case["m"], case["n"], case["row_nnz"])
    rng = np.random.default_rng(3)
    v = rng.standard_normal(case["n"])
    u = rng.standard_normal(case["m"])
    B = rng.standard_normal((case["n"], 5))
    matrix.rmatvec(u)  # build the transpose/segment caches up front

    backends = ("reference",) + (
        ("compiled",) if kernels.compiled_available() else ()
    )
    times, outputs = {}, {}
    for backend in backends:
        with kernels.use_backend(backend):
            mv = best_of(repeats, lambda: kernels.csr_matvec(matrix, v))
            rmv = best_of(repeats, lambda: kernels.csr_rmatvec(matrix, u))
            mm = best_of(repeats, lambda: kernels.csr_matmat(matrix, B))
        times[backend] = {
            "matvec_seconds": mv[0],
            "rmatvec_seconds": rmv[0],
            "matmat_seconds": mm[0],
        }
        outputs[backend] = (mv[1], rmv[1], mm[1])

    section = {
        **case,
        "nnz": matrix.nnz,
        "repeats": repeats,
        "min_speedup": min_speedup,
        "compiled_available": kernels.compiled_available(),
        "backends": times,
    }
    if kernels.compiled_available():
        for name, ref, comp in zip(
            ("matvec", "rmatvec", "matmat"),
            outputs["reference"],
            outputs["compiled"],
        ):
            assert ref.tobytes() == comp.tobytes(), (
                f"kernel backends diverged bitwise on {name} in the "
                "microbench"
            )
        speedups = {
            name: (
                times["reference"][f"{name}_seconds"]
                / times["compiled"][f"{name}_seconds"]
            )
            for name in ("matvec", "rmatvec", "matmat")
        }
        section["speedup"] = speedups
        for name in ("matvec", "matmat"):
            assert speedups[name] >= min_speedup, (
                f"compiled {name} is only {speedups[name]:.2f}x the "
                f"reference (need >= {min_speedup}x); the compiled "
                "backend has lost its reason to exist"
            )
    return section


def run_serial_passthrough(case, iter_lim, repeats):
    """Single-shard sharding must be free: the pre-PR path, refactored.

    Asserted at <2% (plus timer-jitter slack): ``SRDA()`` without
    ``n_jobs`` never pays for the parallel layer's existence.
    """
    matrix = make_problem(case["m"], case["n"], case["row_nnz"])
    B = make_rhs(case["m"], case["classes"])
    reps = max(repeats, 5)

    direct_seconds, _ = solve(as_operator(matrix), B, iter_lim, reps)
    with ShardedOperator(matrix, n_shards=1, backend="serial") as op:
        passthrough_seconds, _ = solve(op, B, iter_lim, reps)

    overhead = passthrough_seconds / direct_seconds - 1.0
    assert passthrough_seconds <= direct_seconds * 1.02 + 1e-4, (
        f"single-shard passthrough added {overhead:.1%} over the direct "
        "path; the serial backend must stay within 2%"
    )
    return {
        "direct_seconds": direct_seconds,
        "passthrough_seconds": passthrough_seconds,
        "overhead": overhead,
        "max_overhead": 0.02,
    }


def run_experiment_parity(seed=7):
    """Error grids must be bitwise identical across ``n_jobs``."""
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.standard_normal((40, 16)) + 3.0 * k for k in range(4)]
    )
    y = np.repeat(np.arange(4), 40)
    dataset = Dataset(
        "bench-grid",
        X,
        y,
        metadata={
            "split_protocol": "per_class_within",
            "train_sizes": [5, 10],
        },
    )
    algorithms = {"SRDA": lambda: SRDA(alpha=1.0)}

    grids = {}
    for jobs in (1, 2, 4):
        result = run_experiment(
            dataset, algorithms, n_splits=3, seed=seed, n_jobs=jobs
        )
        grids[jobs] = {
            key: tuple(cell.errors) for key, cell in result.cells.items()
        }
    identical = all(grids[jobs] == grids[1] for jobs in grids)
    assert identical, "experiment grids diverged across n_jobs"
    return {
        "n_jobs_checked": sorted(grids),
        "n_cells": len(grids[1]),
        "bitwise_identical": identical,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI — validates parity, not throughput",
    )
    parser.add_argument(
        "--out", default="BENCH_parallel.json", help="output JSON path"
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--no-process",
        action="store_true",
        help="skip the process backend (slow spawn on tiny runners)",
    )
    args = parser.parse_args(argv)

    case = SMOKE_CASE if args.smoke else FULL_CASE
    worker_counts = SMOKE_WORKERS if args.smoke else FULL_WORKERS
    iter_lim = 10 if args.smoke else 15
    repeats = args.repeats or (2 if args.smoke else 3)

    solver = run_solver_grid(
        case,
        iter_lim=iter_lim,
        repeats=repeats,
        worker_counts=worker_counts,
        include_process=not args.no_process,
    )
    print(
        f"m={case['m']} n={case['n']} c={case['classes']} "
        f"shards={solver['n_shards']}: direct "
        f"{solver['direct']['seconds']:.3f}s, sharded serial "
        f"{solver['sharded_serial']['seconds']:.3f}s "
        f"({solver['sharded_serial']['overhead_vs_direct']:+.1%})"
    )
    for variant in solver["variants"]:
        print(
            f"  {variant['backend']:>7} x{variant['n_workers']}: "
            f"{variant['seconds']:.3f}s "
            f"(vs serial {variant['speedup_vs_serial']:.2f}x, "
            f"rel diff {variant['max_rel_diff_vs_serial']:.1e} serial / "
            f"{variant['max_rel_diff_vs_direct']:.1e} direct)"
        )

    gates_enforced = multicore_gates_enforced()
    thread_x4 = [
        variant
        for variant in solver["variants"]
        if variant["backend"] == "thread" and variant["n_workers"] == 4
    ]
    if gates_enforced and thread_x4:
        speedup = thread_x4[0]["speedup_vs_direct"]
        assert speedup > 1.0, (
            f"thread x4 speedup_vs_direct is {speedup:.2f}x on a "
            f"{os.cpu_count()}-core runner; the GIL-free kernels must "
            "make the parallel backend beat the direct path"
        )
    elif thread_x4:
        print(
            f"multicore gate skipped (cpu_count={os.cpu_count()} < 4): "
            f"thread x4 recorded {thread_x4[0]['speedup_vs_direct']:.2f}x"
        )

    micro = run_kernel_microbench(
        SMOKE_MICRO_CASE if args.smoke else MICRO_CASE,
        repeats=max(repeats * 3, 5),
    )
    for backend_name, entry in micro["backends"].items():
        print(
            f"  kernels[{backend_name}]: "
            f"matvec {entry['matvec_seconds'] * 1e3:.3f}ms  "
            f"rmatvec {entry['rmatvec_seconds'] * 1e3:.3f}ms  "
            f"matmat {entry['matmat_seconds'] * 1e3:.3f}ms"
        )
    if "speedup" in micro:
        print(
            "  compiled speedup: "
            + "  ".join(
                f"{k} {v:.2f}x" for k, v in micro["speedup"].items()
            )
        )

    passthrough = run_serial_passthrough(
        SMOKE_CASE, iter_lim=iter_lim, repeats=repeats
    )
    print(
        f"single-shard passthrough overhead: "
        f"{passthrough['overhead']:+.2%}"
    )

    grid = run_experiment_parity()
    print(
        f"experiment grids over n_jobs={grid['n_jobs_checked']}: "
        f"bitwise identical across {grid['n_cells']} cells"
    )

    payload = {
        "benchmark": "parallel",
        "mode": "smoke" if args.smoke else "full",
        **provenance(gates_enforced),
        "repeats": repeats,
        "kernel_microbench": micro,
        "solver": solver,
        "serial_passthrough": passthrough,
        "experiment_grid": grid,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return payload


if __name__ == "__main__":
    main()
