"""Tables VII–VIII and Figure 3 — the MNIST handwritten-digit experiment.

Protocol: for l ∈ {30, …, 170} per digit drawn from the fixed train pool
(the paper's first 2000 of set A), test on the fixed test pool (first
2000 of set B).  Expected shape: regularized methods dominate plain LDA
by a wide margin at every size (paper: 38–73% LDA vs 18–24% for
RLDA/SRDA), with SRDA and RLDA nearly tied and IDR/QR a few points
behind.
"""

from benchmarks._harness import (
    assert_dense_paper_shape,
    once,
    paper_algorithms,
    run_and_render,
)
from benchmarks.conftest import N_SPLITS, SCALE, record_report

TRAIN_SIZES = [30, 50, 70, 100, 130, 170]


def test_mnist_error_and_time(benchmark, mnist_dataset):
    def run():
        return run_and_render(
            mnist_dataset,
            paper_algorithms(),
            TRAIN_SIZES,
            N_SPLITS,
            seed=33,
            error_title=(
                f"Table VII — error rates (%) on MNIST-like digits "
                f"(scale={SCALE}, {N_SPLITS} splits)"
            ),
            time_title="Table VIII — training time (s) on MNIST-like digits",
            figure_title="Figure 3 (MNIST)",
            record=lambda text: record_report("mnist_tables78_fig3", text),
        )

    result = once(benchmark, run)
    assert_dense_paper_shape(result)

    # MNIST-specific: SRDA and RLDA stay within a couple points of each
    # other at every size (paper: ≤ 0.4% apart everywhere)
    for size in result.size_labels:
        srda = result.cell("SRDA", size).mean_error
        rlda = result.cell("RLDA", size).mean_error
        assert abs(srda - rlda) < 0.08, (size, srda, rlda)
