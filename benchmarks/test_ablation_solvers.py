"""Ablation A1 — the two SRDA solvers (Section III-C.1 vs III-C.2).

DESIGN.md calls out the solver choice as the central design decision:
normal equations (exact, cubic factor in t) versus LSQR (iterative,
linear).  We verify the two produce interchangeable models on dense data
and measure where the wall-clock crossover falls as dimensionality
grows.
"""

import time

import numpy as np

from benchmarks._harness import once
from benchmarks.conftest import record_report
from repro import SRDA
from repro.eval.metrics import error_rate


def make_problem(m, n, c, rng):
    centers = 2.0 * rng.standard_normal((c, n))
    y = np.arange(m) % c
    X = centers[y] + rng.standard_normal((m, n))
    return X, y


def test_solver_agreement_and_crossover(benchmark):
    rng = np.random.default_rng(61)

    def run():
        lines = [
            "Ablation A1 — SRDA solver comparison (alpha=1, 20 LSQR iters)",
            f"{'m':>6} {'n':>6} {'normal (s)':>12} {'lsqr (s)':>12} "
            f"{'emb. diff':>10} {'pred agree':>11}",
            "-" * 62,
        ]
        rows = []
        # the normal path's cubic factor bites only when BOTH dimensions
        # are large (the dual trick caps the system at min(m, n)); the
        # sweep holds m fixed and widens n to traverse the crossover
        for m, n in [(2000, 100), (2000, 500), (2000, 1000), (2000, 2000)]:
            X, y = make_problem(m, n, 8, rng)
            t0 = time.perf_counter()
            normal = SRDA(alpha=1.0, solver="normal").fit(X, y)
            normal_time = time.perf_counter() - t0
            t0 = time.perf_counter()
            iterative = SRDA(alpha=1.0, solver="lsqr", max_iter=20,
                             tol=0.0).fit(X, y)
            lsqr_time = time.perf_counter() - t0
            Z_normal = normal.transform(X)
            Z_lsqr = iterative.transform(X)
            diff = np.linalg.norm(Z_normal - Z_lsqr) / np.linalg.norm(Z_normal)
            agree = float(
                np.mean(normal.predict(X) == iterative.predict(X))
            )
            lines.append(
                f"{m:>6} {n:>6} {normal_time:>12.3f} {lsqr_time:>12.3f} "
                f"{diff:>10.2e} {agree:>11.3f}"
            )
            rows.append((m, n, normal_time, lsqr_time, diff, agree))
        return "\n".join(lines), rows

    text, rows = once(benchmark, run)
    record_report("ablation_solvers", text)

    for m, n, normal_time, lsqr_time, diff, agree in rows:
        # 20 iterations give an interchangeable model
        assert diff < 0.05, (m, n, diff)
        assert agree > 0.97, (m, n, agree)

    # crossover: LSQR must win by the widest problem (its cost is linear
    # in n; the normal path pays the m×m dual factor + dense gram)
    last = rows[-1]
    assert last[3] < last[2], last
