"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation (Section IV) and asserts its *qualitative shape* — orderings,
crossovers, scaling slopes — rather than absolute numbers (our substrate
is synthetic data and a from-scratch Python stack, not the authors' 2008
testbed).

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:

- ``small`` (default) — reduced sample counts so the whole suite runs in
  minutes; class counts, feature counts and train-size labels follow the
  paper wherever feasible.
- ``paper`` — the full Table II dataset shapes and 20 splits per cell
  (slow; intended for one-off full reproductions).

Rendered tables are collected and echoed in the terminal summary, and
written under ``benchmarks/reports/``.
"""

import os
from pathlib import Path

import pytest

from repro.datasets import make_digits, make_faces, make_spoken_letters, make_text

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
if SCALE not in ("small", "paper"):
    raise ValueError(f"REPRO_BENCH_SCALE must be 'small' or 'paper', got {SCALE}")

#: Splits per cell (paper: 20).
N_SPLITS = 20 if SCALE == "paper" else 3
N_SPLITS_SPARSE = 20 if SCALE == "paper" else 2

REPORTS = []
_REPORT_DIR = Path(__file__).parent / "reports"


def record_report(name: str, text: str) -> None:
    """Queue a rendered table/figure for the terminal summary and disk."""
    REPORTS.append((name, text))
    _REPORT_DIR.mkdir(exist_ok=True)
    path = _REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n")


def pytest_terminal_summary(terminalreporter):
    if not REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for name, text in REPORTS:
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(text)


@pytest.fixture(scope="session")
def pie_dataset():
    """PIE-like faces (Tables III/IV, Figure 1)."""
    if SCALE == "paper":
        return make_faces(seed=101)  # 68 × 170 × 1024
    return make_faces(n_subjects=68, images_per_subject=80, side=32, seed=101)


@pytest.fixture(scope="session")
def isolet_dataset():
    """Isolet-like spoken letters (Tables V/VI, Figure 2)."""
    if SCALE == "paper":
        return make_spoken_letters(seed=102)
    return make_spoken_letters(
        n_train_speakers=60, n_test_speakers=25, seed=102
    )


@pytest.fixture(scope="session")
def mnist_dataset():
    """MNIST-like digits (Tables VII/VIII, Figure 3)."""
    if SCALE == "paper":
        return make_digits(seed=103)
    return make_digits(n_train=2000, n_test=1000, seed=103)


@pytest.fixture(scope="session")
def news_dataset():
    """20NG-like sparse text (Tables IX/X, Figure 4)."""
    if SCALE == "paper":
        return make_text(seed=104)
    return make_text(n_docs=18941, vocab_size=26214, seed=104)
