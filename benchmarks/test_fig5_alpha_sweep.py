"""Figure 5 — model selection: SRDA error as a function of α/(1+α).

The paper sweeps α/(1+α) over (0, 1) on eight dataset/size panels and
shows two things: (a) SRDA beats LDA and IDR/QR over a *wide* range of
α, so (b) parameter selection "is not a very crucial problem".  We
reproduce four representative panels (one per dataset) with the same
x-axis parameterization and assert both claims.
"""

import numpy as np

from benchmarks._harness import once
from benchmarks.conftest import N_SPLITS, record_report
from repro import IDRQR, LDA, SRDA, srda_alpha_path
from repro.datasets.splits import (
    per_class_split,
    per_class_split_from_pool,
    ratio_split,
    split_seeds,
)
from repro.eval.metrics import error_rate
from repro.eval.tables import render_ascii_chart

#: the paper's x-axis grid: α/(1+α) ∈ {0.1, …, 0.9}
RATIOS = np.arange(0.1, 0.95, 0.1)


def _split(dataset, size, rng):
    protocol = dataset.metadata["split_protocol"]
    if protocol == "per_class_within":
        return per_class_split(dataset.y, size, rng)
    if protocol == "per_class_from_pool":
        return per_class_split_from_pool(
            dataset.y,
            dataset.metadata["train_pool"],
            dataset.metadata["test_pool"],
            size,
            rng,
        )
    return ratio_split(dataset.y, size, rng)


def sweep_panel(dataset, size, sparse=False, seed=55):
    """Mean test error per α for SRDA, plus LDA and IDR/QR references."""
    srda_errors = np.zeros(len(RATIOS))
    lda_error = 0.0
    idrqr_error = 0.0
    runs = 0
    for split_seed in split_seeds(seed, N_SPLITS):
        rng = np.random.default_rng(int(split_seed))
        train_idx, test_idx = _split(dataset, size, rng)
        X_train, y_train = dataset.subset(train_idx)
        X_test, y_test = dataset.subset(test_idx)
        if sparse:
            # One shared bidiagonalization serves the whole α grid —
            # the sweep pays a single fit's worth of data passes.
            models = srda_alpha_path(
                X_train,
                y_train,
                [r / (1.0 - r) for r in RATIOS],
                max_iter=15,
                tol=0.0,
            )
            for i, model in enumerate(models):
                srda_errors[i] += error_rate(y_test, model.predict(X_test))
        else:
            for i, ratio in enumerate(RATIOS):
                alpha = ratio / (1.0 - ratio)
                model = SRDA(alpha=alpha, solver="normal")
                model.fit(X_train, y_train)
                srda_errors[i] += error_rate(y_test, model.predict(X_test))
        if not sparse:
            lda_error += error_rate(
                y_test, LDA().fit(X_train, y_train).predict(X_test)
            )
        idrqr_error += error_rate(
            y_test, IDRQR(alpha=1.0).fit(X_train, y_train).predict(X_test)
        )
        runs += 1
    srda_errors /= runs
    lda_error = lda_error / runs if not sparse else float("nan")
    idrqr_error /= runs
    return srda_errors, lda_error, idrqr_error


def render_panel(name, srda_errors, lda_error, idrqr_error):
    series = {
        "SRDA": (
            [f"{r:.1f}" for r in RATIOS],
            list(100 * srda_errors),
        ),
        "IDR/QR": (
            [f"{r:.1f}" for r in RATIOS],
            [100 * idrqr_error] * len(RATIOS),
        ),
    }
    if np.isfinite(lda_error):
        series["LDA"] = (
            [f"{r:.1f}" for r in RATIOS],
            [100 * lda_error] * len(RATIOS),
        )
    return render_ascii_chart(
        series, f"Figure 5 ({name}) — error (%) vs alpha/(1+alpha)"
    )


def test_fig5_pie_panel(benchmark, pie_dataset):
    srda, lda, idrqr = once(benchmark, lambda: sweep_panel(pie_dataset, 10))
    record_report("fig5_pie", render_panel("PIE, 10 train", srda, lda, idrqr))
    _assert_panel_claims(srda, lda, idrqr)


def test_fig5_isolet_panel(benchmark, isolet_dataset):
    srda, lda, idrqr = once(
        benchmark, lambda: sweep_panel(isolet_dataset, 50)
    )
    record_report(
        "fig5_isolet", render_panel("Isolet, 50 train", srda, lda, idrqr)
    )
    _assert_panel_claims(srda, lda, idrqr)


def test_fig5_mnist_panel(benchmark, mnist_dataset):
    srda, lda, idrqr = once(benchmark, lambda: sweep_panel(mnist_dataset, 30))
    record_report(
        "fig5_mnist", render_panel("MNIST, 30 train", srda, lda, idrqr)
    )
    _assert_panel_claims(srda, lda, idrqr)


def test_fig5_news_panel(benchmark, news_dataset):
    srda, _, idrqr = once(
        benchmark, lambda: sweep_panel(news_dataset, 0.05, sparse=True)
    )
    record_report(
        "fig5_news",
        render_panel("20Newsgroups, 5% train", srda, float("nan"), idrqr),
    )
    # LDA reference omitted (on this machine LDA densifies 200 MB per
    # split here; the qualitative claim is against IDR/QR)
    _assert_panel_claims(srda, float("inf"), idrqr)


def _widest_flat_band(errors: np.ndarray, window: int = 4) -> float:
    """Smallest max−min over any `window` consecutive grid points."""
    return min(
        float(errors[i : i + window].max() - errors[i : i + window].min())
        for i in range(len(errors) - window + 1)
    )


def _assert_panel_claims(srda_errors, lda_error, idrqr_error):
    """Fig 5's two claims, in the form that holds on every panel:

    (a) SRDA's best α beats LDA outright and is at least competitive
        with IDR/QR (paper: strictly better; we allow a 3-point margin
        since the synthetic panels vary);
    (b) there is a *wide flat region* — some 4 consecutive grid points
        where SRDA's error moves by < 5 points — so α selection is not
        critical, which is the section's conclusion.
    """
    assert srda_errors.min() < lda_error
    assert srda_errors.min() <= idrqr_error + 0.03, (
        srda_errors.min(), idrqr_error,
    )
    if np.isfinite(lda_error):
        wins_vs_lda = np.sum(srda_errors < lda_error)
        assert wins_vs_lda >= 6, (srda_errors, lda_error)
    assert _widest_flat_band(srda_errors) < 0.05, srda_errors
