"""Tables V–VI and Figure 2 — the Isolet spoken-letter experiment.

Protocol: for l ∈ {20, …, 110} per letter drawn from the fixed training
pool (isolet1&2), test on the fixed speaker-disjoint pool (isolet4&5).
The speaker shift makes plain LDA collapse badly at small l (paper:
54.1% at l=20 vs 9.4%/9.5% for RLDA/SRDA) — the sharpest overfitting
case in the evaluation.
"""

from benchmarks._harness import (
    assert_dense_paper_shape,
    once,
    paper_algorithms,
    run_and_render,
)
from benchmarks.conftest import N_SPLITS, SCALE, record_report

TRAIN_SIZES = [20, 30, 50, 70, 90, 110]


def test_isolet_error_and_time(benchmark, isolet_dataset):
    def run():
        return run_and_render(
            isolet_dataset,
            paper_algorithms(),
            TRAIN_SIZES,
            N_SPLITS,
            seed=32,
            error_title=(
                f"Table V — error rates (%) on Isolet-like letters "
                f"(scale={SCALE}, {N_SPLITS} splits)"
            ),
            time_title="Table VI — training time (s) on Isolet-like letters",
            figure_title="Figure 2 (Isolet)",
            record=lambda text: record_report("isolet_tables56_fig2", text),
        )

    result = once(benchmark, run)
    assert_dense_paper_shape(result)

    # Isolet-specific: the regularization gap at the smallest size is
    # large (paper: 54.1% LDA vs 9.5% SRDA); require a clear margin
    smallest = result.size_labels[0]
    lda_error = result.cell("LDA", smallest).mean_error
    srda_error = result.cell("SRDA", smallest).mean_error
    assert lda_error - srda_error > 0.03, (lda_error, srda_error)
