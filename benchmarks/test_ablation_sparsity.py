"""Ablation A3 — exploiting sparsity (CSR operators vs densified data).

Section III-C's closing point: SRDA-LSQR "can fully explore the
sparseness of the data matrix".  Same data, same solver, two storage
layouts: the CSR path must (a) produce the same model and (b) win on
time by a factor that grows with 1/density.
"""

import time

import numpy as np

from benchmarks._harness import once
from benchmarks.conftest import record_report
from repro import SRDA
from repro.datasets import make_text


def test_sparse_vs_densified(benchmark):
    dataset = make_text(n_docs=3000, vocab_size=26214, seed=63)
    X_sparse = dataset.X
    y = dataset.y
    density = X_sparse.nnz / (X_sparse.shape[0] * X_sparse.shape[1])

    def run():
        t0 = time.perf_counter()
        sparse_model = SRDA(
            alpha=1.0, solver="lsqr", max_iter=15, tol=0.0
        ).fit(X_sparse, y)
        sparse_time = time.perf_counter() - t0

        X_dense = X_sparse.to_dense()
        t0 = time.perf_counter()
        dense_model = SRDA(
            alpha=1.0, solver="lsqr", max_iter=15, tol=0.0, centering=False
        ).fit(X_dense, y)
        dense_time = time.perf_counter() - t0
        return sparse_model, dense_model, sparse_time, dense_time

    sparse_model, dense_model, sparse_time, dense_time = once(benchmark, run)

    record_report(
        "ablation_sparsity",
        "\n".join(
            [
                "Ablation A3 — SRDA-LSQR on CSR vs densified data "
                f"(m=3000, n=26214, density={density:.4f})",
                f"sparse (CSR) fit time:   {sparse_time:8.2f} s",
                f"densified fit time:      {dense_time:8.2f} s",
                f"speedup:                 {dense_time / sparse_time:8.1f}x",
                f"memory ratio (model):    {1 / density:8.0f}x",
            ]
        ),
    )

    # same model from both storage layouts.  Raw weights are compared
    # loosely (Krylov iterates amplify accumulation-order rounding on
    # ill-conditioned directions before convergence); the embedding and
    # the predictions — what the model *is* — must agree tightly.
    Z_sparse = sparse_model.transform(X_sparse)
    Z_dense = dense_model.transform(X_sparse.to_dense())
    rel = np.linalg.norm(Z_sparse - Z_dense) / np.linalg.norm(Z_dense)
    assert rel < 1e-2, rel
    agreement = np.mean(
        sparse_model.predict(X_sparse) == dense_model.predict(X_sparse.to_dense())
    )
    assert agreement > 0.995, agreement
    # the sparse path wins big (density < 1%, ask for ≥ 5x to be safe)
    assert dense_time > 5.0 * sparse_time, (dense_time, sparse_time)
