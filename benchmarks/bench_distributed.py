"""Distributed-backend benchmark — emits ``BENCH_distributed.json``.

Measures what the distributed layer claims and what it must not break:

1. **Traffic shape**: shard payloads ship once; after that, each block
   iteration moves only operand/result vectors.  Recorded as
   ``ship_bytes`` (one-time) vs ``bytes_per_iteration`` (steady state),
   and the ratio between them — the wire-level restatement of the
   paper's "touch the data once per iteration" argument.
2. **Parity**: the distributed solve must be *bitwise identical* to the
   sharded serial run (``max_rel_diff_vs_serial == 0``) and within the
   adjoint fold tolerance of the direct path (``<= 1e-12``).  Both are
   asserted, not just recorded.
3. **Recovery**: a worker SIGKILLed mid-solve (seeded
   :class:`~repro.distributed.chaos.ChaosPlan`) must still produce the
   bitwise-serial result; the wall-clock penalty and the supervisor's
   recovery counters (deaths, reassignments, retries) are recorded.
4. **Degradation**: losing *every* worker must fall back to the local
   serial backend — bitwise identical again — with the ladder recorded.

Run from the repo root::

    PYTHONPATH=src:. python benchmarks/bench_distributed.py           # full
    PYTHONPATH=src:. python benchmarks/bench_distributed.py --smoke   # CI

The JSON schema is documented in ``docs/DISTRIBUTED.md``.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from benchmarks._provenance import provenance
from benchmarks.bench_parallel import make_problem, make_rhs, rel_diff
from repro.distributed import ChaosBackend, ChaosPlan, DistributedBackend
from repro.linalg.block_lsqr import block_lsqr
from repro.linalg.operators import as_operator
from repro.parallel import ShardedOperator

FULL_CASE = dict(m=8000, n=6000, classes=10, row_nnz=60)
SMOKE_CASE = dict(m=1200, n=900, classes=5, row_nnz=30)


def _solve(op, B, iter_lim):
    start = time.perf_counter()
    X = block_lsqr(op, B, damp=1.0, atol=0.0, btol=0.0, iter_lim=iter_lim).X
    return time.perf_counter() - start, X


def _assert_parity(X, serial_x, direct_x, label):
    vs_serial = rel_diff(X, serial_x)
    vs_direct = rel_diff(X, direct_x)
    assert vs_serial == 0.0, (
        f"{label} diverged from the sharded serial run "
        f"(max_rel_diff={vs_serial:.3e}); results must not depend on "
        "which process does the arithmetic"
    )
    assert vs_direct <= 1e-12, (
        f"{label} drifted {vs_direct:.3e} from the direct path; "
        "adjoint fold tolerance is 1e-12"
    )
    return {
        "max_rel_diff_vs_serial": vs_serial,
        "max_rel_diff_vs_direct": vs_direct,
    }


def run_traffic_and_parity(case, iter_lim, n_workers):
    """Clean distributed solve: traffic accounting + parity columns."""
    matrix = make_problem(case["m"], case["n"], case["row_nnz"])
    B = make_rhs(case["m"], case["classes"])

    direct_seconds, direct_x = _solve(as_operator(matrix), B, iter_lim)
    with ShardedOperator(matrix, backend="serial") as op:
        n_shards = op.n_shards
        serial_seconds, serial_x = _solve(op, B, iter_lim)

    backend = DistributedBackend(n_workers=n_workers, heartbeat_interval=0.0)
    try:
        with ShardedOperator(matrix, backend=backend) as op:
            ship_stats = backend.stats()
            seconds, X = _solve(op, B, iter_lim)
            run_stats = backend.stats()
    finally:
        backend.close()

    parity = _assert_parity(X, serial_x, direct_x, "distributed")
    # block_lsqr does one forward + one adjoint block product per
    # iteration, plus the initial A.T @ u product.
    n_products = 2 * iter_lim + 1
    iter_sent = run_stats["bytes_sent"] - ship_stats["bytes_sent"]
    iter_received = run_stats["bytes_received"] - ship_stats["bytes_received"]
    rhs_floats = case["m"] * (case["classes"] - 1)
    return {
        **case,
        "nnz": matrix.nnz,
        "iter_lim": iter_lim,
        "n_shards": n_shards,
        "n_workers": n_workers,
        "direct_seconds": direct_seconds,
        "sharded_serial_seconds": serial_seconds,
        "distributed_seconds": seconds,
        "ship_bytes": ship_stats["bytes_sent"],
        "bytes_per_iteration": iter_sent / iter_lim,
        "bytes_received_per_iteration": iter_received / iter_lim,
        "bytes_per_product": iter_sent / n_products,
        "rhs_bytes": rhs_floats * 8,
        "ship_to_iteration_ratio": (
            ship_stats["bytes_sent"] / max(1.0, iter_sent / iter_lim)
        ),
        **parity,
    }


def run_recovery(case, iter_lim, n_workers):
    """SIGKILL worker 0 mid-solve; recovery must restore exact numbers."""
    matrix = make_problem(case["m"], case["n"], case["row_nnz"])
    B = make_rhs(case["m"], case["classes"])

    direct_seconds, direct_x = _solve(as_operator(matrix), B, iter_lim)
    with ShardedOperator(matrix, backend="serial") as op:
        _, serial_x = _solve(op, B, iter_lim)

    clean = DistributedBackend(n_workers=n_workers, heartbeat_interval=0.0)
    try:
        with ShardedOperator(matrix, backend=clean) as op:
            clean_seconds, _ = _solve(op, B, iter_lim)
    finally:
        clean.close()

    inner = DistributedBackend(
        n_workers=n_workers, heartbeat_interval=0.5, task_timeout=10.0
    )
    chaotic = ChaosBackend(inner, ChaosPlan(kill_at={5: 0}))
    try:
        with ShardedOperator(matrix, backend=chaotic) as op:
            chaos_seconds, X = _solve(op, B, iter_lim)
            stats = inner.stats()
    finally:
        chaotic.close()

    parity = _assert_parity(X, serial_x, direct_x, "post-kill recovery")
    assert stats["worker_deaths"] == 1, "the scheduled kill did not land"
    assert stats["reassignments"] >= 1, "orphaned shards were not adopted"
    return {
        "kill_at_product": 5,
        "clean_seconds": clean_seconds,
        "with_kill_seconds": chaos_seconds,
        "recovery_seconds": max(0.0, chaos_seconds - clean_seconds),
        "worker_deaths": stats["worker_deaths"],
        "reassignments": stats["reassignments"],
        "retries": stats["retries"],
        "surviving_workers": stats["live_workers"],
        **parity,
    }


def run_degradation(case, iter_lim, n_workers):
    """Kill everything; the local fallback must be bitwise-serial."""
    matrix = make_problem(case["m"], case["n"], case["row_nnz"])
    B = make_rhs(case["m"], case["classes"])

    direct_seconds, direct_x = _solve(as_operator(matrix), B, iter_lim)
    with ShardedOperator(matrix, backend="serial") as op:
        _, serial_x = _solve(op, B, iter_lim)

    inner = DistributedBackend(
        n_workers=n_workers, heartbeat_interval=0.0, task_timeout=2.0,
        max_retries=1,
    )
    victims = tuple(range(n_workers))
    chaotic = ChaosBackend(inner, ChaosPlan(kill_at={3: victims}))
    try:
        with ShardedOperator(matrix, backend=chaotic) as op:
            seconds, X = _solve(op, B, iter_lim)
            degraded_from = op.degraded_from
            reason = op.degradation_reason
            fallback = op.backend.name
    finally:
        chaotic.close()

    parity = _assert_parity(X, serial_x, direct_x, "degraded fallback")
    assert degraded_from == "chaos(distributed)", (
        f"expected a degradation, got degraded_from={degraded_from!r}"
    )
    return {
        "kill_at_product": 3,
        "seconds": seconds,
        "degraded_from": degraded_from,
        "fallback_backend": fallback,
        "reason": reason,
        **parity,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI — validates parity and recovery, "
        "not throughput",
    )
    parser.add_argument(
        "--out", default="BENCH_distributed.json", help="output JSON path"
    )
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    case = SMOKE_CASE if args.smoke else FULL_CASE
    iter_lim = 10 if args.smoke else 15

    traffic = run_traffic_and_parity(case, iter_lim, args.workers)
    print(
        f"m={case['m']} n={case['n']} c={case['classes']} "
        f"shards={traffic['n_shards']} workers={args.workers}: "
        f"ship {traffic['ship_bytes'] / 1e6:.2f} MB once, then "
        f"{traffic['bytes_per_iteration'] / 1e3:.1f} kB/iteration "
        f"(ratio {traffic['ship_to_iteration_ratio']:.0f}x)"
    )
    print(
        f"  parity: serial {traffic['max_rel_diff_vs_serial']:.1e}, "
        f"direct {traffic['max_rel_diff_vs_direct']:.1e}; "
        f"distributed {traffic['distributed_seconds']:.3f}s vs sharded "
        f"serial {traffic['sharded_serial_seconds']:.3f}s"
    )

    recovery = run_recovery(case, iter_lim, args.workers)
    print(
        f"kill worker 0 at product {recovery['kill_at_product']}: "
        f"recovered in +{recovery['recovery_seconds']:.3f}s "
        f"({recovery['worker_deaths']} death, "
        f"{recovery['reassignments']} reassignments, "
        f"{recovery['retries']} retries), result bitwise-serial"
    )

    degradation = run_degradation(case, iter_lim, args.workers)
    print(
        f"kill all workers at product {degradation['kill_at_product']}: "
        f"degraded {degradation['degraded_from']} -> "
        f"{degradation['fallback_backend']}, result bitwise-serial"
    )

    payload = {
        "benchmark": "distributed",
        "mode": "smoke" if args.smoke else "full",
        # recovery/degradation parity gates are core-count independent
        # and always asserted
        **provenance(gates_enforced=True),
        "n_workers": args.workers,
        "traffic_and_parity": traffic,
        "recovery": recovery,
        "degradation": degradation,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return payload


if __name__ == "__main__":
    main()
